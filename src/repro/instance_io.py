"""Lossless serialisation of whole scheduling instances.

An :class:`~repro.instance.Instance` bundles a DAG, a machine and an
ETC matrix; being able to write the bundle to one JSON file makes
experiments *shareable* — a bug report or a paper artifact can pin the
exact instance, not just the seeds that produced it.

Supported communication models: Zero, Uniform and Link (the three this
library ships).  A custom model serialises only if it is one of these.

This module is also the home of the *canonical form* behind
:meth:`repro.instance.Instance.fingerprint`: an order-independent
document over the same fields the lossless serialiser writes, hashed to
content-address instances in the serving layer.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.dag import io as dag_io
from repro.exceptions import ParseError
from repro.instance import Instance
from repro.machine.cluster import Machine
from repro.machine.comm import (
    CommunicationModel,
    LinkCommunication,
    UniformCommunication,
    ZeroCommunication,
)
from repro.machine.etc import ETCMatrix
from repro.machine.processor import Processor
from repro.utils.encoding import decode_id, encode_id

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# machine
# ----------------------------------------------------------------------
def _comm_to_dict(comm: CommunicationModel, proc_ids) -> dict:
    if isinstance(comm, ZeroCommunication):
        return {"type": "zero"}
    if isinstance(comm, UniformCommunication):
        return {"type": "uniform", "latency": comm.latency, "bandwidth": comm.bandwidth}
    if isinstance(comm, LinkCommunication):
        links = []
        for src in proc_ids:
            for dst in proc_ids:
                if src == dst:
                    continue
                # Re-derive per-pair parameters through the public API.
                latency = comm.time(0.0, src, dst)
                unit = comm.time(1.0, src, dst) - latency
                links.append(
                    {
                        "src": encode_id(src),
                        "dst": encode_id(dst),
                        "latency": latency,
                        "bandwidth": 1.0 / unit if unit > 0 else 1e30,
                    }
                )
        return {"type": "links", "links": links}
    raise ParseError(f"cannot serialise communication model {type(comm).__name__}")


def _comm_from_dict(doc: dict, proc_ids) -> CommunicationModel:
    kind = doc.get("type")
    if kind == "zero":
        return ZeroCommunication()
    if kind == "uniform":
        return UniformCommunication(doc["latency"], doc["bandwidth"])
    if kind == "links":
        lat: dict = {p: {} for p in proc_ids}
        bw: dict = {p: {} for p in proc_ids}
        for rec in doc["links"]:
            src = decode_id(rec["src"])
            dst = decode_id(rec["dst"])
            lat[src][dst] = rec["latency"]
            bw[src][dst] = rec["bandwidth"]
        return LinkCommunication(proc_ids, lat, bw)
    raise ParseError(f"unknown communication model type {kind!r}")


def machine_to_dict(machine: Machine) -> dict:
    """Serialise a machine (processors + communication model)."""
    ids = machine.proc_ids()
    return {
        "name": machine.name,
        "processors": [
            {
                "id": encode_id(p),
                "speed": machine.speed(p),
                "name": machine.processor(p).name,
            }
            for p in ids
        ],
        "comm": _comm_to_dict(machine.comm, ids),
    }


def machine_from_dict(doc: dict) -> Machine:
    """Rebuild a machine from :func:`machine_to_dict` output."""
    try:
        procs = [
            Processor(id=decode_id(rec["id"]), speed=rec.get("speed", 1.0),
                      name=rec.get("name", ""))
            for rec in doc["processors"]
        ]
        comm = _comm_from_dict(doc["comm"], [p.id for p in procs])
    except KeyError as exc:
        raise ParseError(f"machine document missing key: {exc}") from None
    return Machine(procs, comm, name=doc.get("name", "machine"))


# ----------------------------------------------------------------------
# instance
# ----------------------------------------------------------------------
def instance_to_json(instance: Instance) -> str:
    """Serialise a complete instance to JSON text."""
    doc = {
        "format": "repro-instance-v1",
        "name": instance.name,
        "dag": json.loads(dag_io.to_json(instance.dag)),
        "machine": machine_to_dict(instance.machine),
        "etc": {
            "tasks": [encode_id(t) for t in instance.etc.task_ids],
            "procs": [encode_id(p) for p in instance.etc.proc_ids],
            "values": instance.etc.as_array().tolist(),
        },
    }
    # Constraints are optional trailing fields: deadline-free instances
    # serialise byte-identically to the pre-constraint format.
    if instance.deadline is not None:
        doc["deadline"] = instance.deadline
    return json.dumps(doc, indent=1)


def instance_from_json(text: str) -> Instance:
    """Rebuild an instance from :func:`instance_to_json` output."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from None
    if doc.get("format") != "repro-instance-v1":
        raise ParseError(f"unsupported instance format {doc.get('format')!r}")
    dag = dag_io.from_json(json.dumps(doc["dag"]))
    machine = machine_from_dict(doc["machine"])
    etc_doc = doc["etc"]
    etc = ETCMatrix(
        [decode_id(t) for t in etc_doc["tasks"]],
        [decode_id(p) for p in etc_doc["procs"]],
        np.asarray(etc_doc["values"], dtype=float),
    )
    return Instance(
        dag=dag, machine=machine, etc=etc,
        name=doc.get("name", ""), deadline=doc.get("deadline"),
    )


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------
def _id_key(value) -> str:
    """Total order over mixed-type ids via their canonical JSON encoding."""
    return json.dumps(encode_id(value), sort_keys=True, separators=(",", ":"))


def canonical_instance_doc(instance: Instance) -> dict:
    """Order-independent canonical document of an instance's *content*.

    Two instances that describe the same problem — same tasks, edges,
    processors, communication model and ETC values — produce the same
    document regardless of construction order (task/edge insertion
    sequence, ETC row/column order).  Metadata that does not change the
    problem (instance/DAG/machine names, processor display names) is
    deliberately excluded, so renaming an instance does not defeat
    content addressing.
    """
    dag = instance.dag
    machine = instance.machine
    task_order = sorted(dag.tasks(), key=_id_key)
    proc_order = sorted(machine.proc_ids(), key=_id_key)
    comm = _comm_to_dict(machine.comm, machine.proc_ids())
    if comm.get("type") == "links":
        comm["links"] = sorted(comm["links"], key=lambda r: (_id_key(r["src"]), _id_key(r["dst"])))
    doc = {
        "format": "repro-instance-fingerprint-v1",
        "tasks": [[encode_id(t), dag.cost(t)] for t in task_order],
        "edges": sorted(
            ([encode_id(u), encode_id(v), dag.data(u, v)] for u, v in dag.edges()),
            key=lambda rec: (_id_key(decode_id(rec[0])), _id_key(decode_id(rec[1]))),
        ),
        "procs": [[encode_id(p), machine.speed(p)] for p in proc_order],
        "comm": comm,
        "etc": [[instance.etc.time(t, p) for p in proc_order] for t in task_order],
    }
    # The deadline is *content* — it changes which schedules are
    # acceptable — so it participates in the digest.  It is included
    # only when set, so every deadline-free instance hashes exactly as
    # it did before constraints existed (cache keys stay warm).
    if instance.deadline is not None:
        doc["deadline"] = instance.deadline
    return doc


def instance_fingerprint(instance: Instance) -> str:
    """SHA-256 hex digest of :func:`canonical_instance_doc`.

    Stable across processes and Python sessions (no reliance on
    ``hash()``) and exact in the float values: ``json.dumps`` emits the
    shortest round-trip ``repr`` of each float, so any single-ULP
    perturbation of an ETC cell, edge weight or task cost changes the
    digest.
    """
    text = json.dumps(canonical_instance_doc(instance), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def save_instance(instance: Instance, path: PathLike) -> None:
    """Write the instance JSON to disk."""
    Path(path).write_text(instance_to_json(instance))


def load_instance(path: PathLike) -> Instance:
    """Read an instance JSON from disk."""
    return instance_from_json(Path(path).read_text())
