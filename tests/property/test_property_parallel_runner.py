"""Property: the parallel sweep runner is bit-identical to serial.

``run_sweep(workers=N)`` fans replications over a process pool but spawns
the per-replication RNG streams exactly as the serial path does and
reassembles results in replication order — so for *any* seed and worker
count the series and every raw sample must match ``workers=1`` exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import workloads as W
from repro.bench.runner import run_sweep
from repro.exceptions import ConfigurationError

SCHEDULERS = ("HEFT", "CPOP")
FACTORY = W.SweepFactory(kind="random", param="num_tasks")


def _sweep(seed: int, workers: int):
    return run_sweep(
        SCHEDULERS,
        "num_tasks",
        [12, 16],
        FACTORY,
        reps=2,
        metric="slr",
        seed=seed,
        check=False,
        workers=workers,
    )


@given(seed=st.integers(min_value=0, max_value=2**31 - 1), workers=st.sampled_from([2, 4]))
@settings(max_examples=5, deadline=None)
def test_parallel_sweep_bit_identical_to_serial(seed: int, workers: int):
    serial = _sweep(seed, workers=1)
    parallel = _sweep(seed, workers=workers)
    assert parallel.x_values == serial.x_values
    assert parallel.series == serial.series  # exact float equality
    assert parallel.raw == serial.raw


def test_workers_must_be_positive():
    with pytest.raises(ConfigurationError):
        _sweep(0, workers=0)


def test_unpicklable_factory_is_rejected_up_front():
    rejected = lambda x, rng: W.random_instance(rng, num_tasks=x)  # noqa: E731
    with pytest.raises(ConfigurationError, match="picklable"):
        run_sweep(
            SCHEDULERS,
            "num_tasks",
            [10],
            rejected,
            reps=1,
            seed=3,
            check=False,
            workers=2,
        )
