"""Tests for repro.dag.task."""

import math

import pytest

from repro.dag.task import Task
from repro.exceptions import CostError


class TestTaskConstruction:
    def test_defaults(self):
        t = Task("x")
        assert t.cost == 1.0
        assert t.name == "x"
        assert dict(t.attrs) == {}

    def test_explicit_name(self):
        assert Task("x", name="the-x").name == "the-x"

    def test_integer_cost_coerced_to_float(self):
        t = Task("x", cost=3)
        assert isinstance(t.cost, float) and t.cost == 3.0

    def test_zero_cost_allowed(self):
        assert Task("virtual", cost=0.0).cost == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(CostError):
            Task("x", cost=-1.0)

    def test_nan_cost_rejected(self):
        with pytest.raises(CostError):
            Task("x", cost=float("nan"))

    def test_inf_cost_rejected(self):
        with pytest.raises(CostError):
            Task("x", cost=math.inf)

    def test_tuple_id_allowed(self):
        t = Task(("upd", 1, 2), cost=5.0)
        assert t.id == ("upd", 1, 2)

    def test_frozen(self):
        t = Task("x")
        with pytest.raises(AttributeError):
            t.cost = 2.0  # type: ignore[misc]

    def test_attrs_stored(self):
        t = Task("x", attrs={"kind": "pivot"})
        assert t.attrs["kind"] == "pivot"


class TestWithCost:
    def test_returns_new_task(self):
        t = Task("x", cost=1.0, attrs={"k": 1})
        u = t.with_cost(9.0)
        assert u.cost == 9.0 and t.cost == 1.0
        assert u.id == t.id and u.name == t.name
        assert dict(u.attrs) == {"k": 1}

    def test_with_cost_validates(self):
        with pytest.raises(CostError):
            Task("x").with_cost(-3.0)
