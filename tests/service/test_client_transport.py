"""Client transport edges: endpoint parsing (including IPv6 literals)
and defensive handling of malformed HTTP responses.

The malformed-response tests run a tiny hand-rolled asyncio server that
speaks deliberately broken HTTP — every defect must surface as a typed
:class:`TransportError` (retryable, mapped like any other ServiceError),
never as a naked ``ValueError`` from ``int()`` or a stray
``IncompleteReadError``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service.client import ServiceClient, parse_endpoint
from repro.service.errors import RequestError, ServiceError, TransportError


# ----------------------------------------------------------------------
# endpoint parsing
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    ("endpoint", "expected"),
    [
        ("localhost", ("localhost", 8787)),
        ("localhost:123", ("localhost", 123)),
        (":9999", ("127.0.0.1", 9999)),
        ("http://127.0.0.1:8787/", ("127.0.0.1", 8787)),
        ("https://scheduler.internal", ("scheduler.internal", 8787)),
        ("  10.0.0.7:80  ", ("10.0.0.7", 80)),
        # Regression: "[::1]:8787".partition(":") used to yield host "[".
        ("[::1]:8787", ("::1", 8787)),
        ("[::1]", ("::1", 8787)),
        ("http://[fe80::1%eth0]:9000/", ("fe80::1%eth0", 9000)),
        ("::1", ("::1", 8787)),
        ("2001:db8::42", ("2001:db8::42", 8787)),
    ],
)
def test_parse_endpoint(endpoint, expected):
    assert parse_endpoint(endpoint) == expected


@pytest.mark.parametrize(
    "endpoint",
    [
        "[::1",            # unclosed bracket
        "[]:8787",         # empty bracketed host
        "[::1]8787",       # junk after bracket
        "host:port",       # non-numeric port
        "host:70000",      # port out of range
        "host:-1",
    ],
)
def test_parse_endpoint_rejects(endpoint):
    with pytest.raises(RequestError):
        parse_endpoint(endpoint)


def test_client_at_uses_parsed_endpoint():
    client = ServiceClient.at("[::1]:9000")
    assert (client.host, client.port) == ("::1", 9000)


# ----------------------------------------------------------------------
# malformed responses
# ----------------------------------------------------------------------
async def _misbehaving_server(raw_response: bytes) -> tuple[asyncio.Server, int]:
    """A server that answers every connection with ``raw_response``."""

    async def handle(reader, writer):
        await reader.readline()  # wait for the request to start
        writer.write(raw_response)
        await writer.drain()
        writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


def _fetch_with(raw_response: bytes):
    async def scenario():
        server, port = await _misbehaving_server(raw_response)
        try:
            client = ServiceClient(port=port, request_timeout=5.0)
            await client._request("GET", "/healthz")
        finally:
            server.close()
            await server.wait_closed()

    return scenario


def test_malformed_content_length_is_transport_error():
    # Regression: int("banana") used to escape as a raw ValueError.
    with pytest.raises(TransportError, match="malformed Content-Length"):
        asyncio.run(
            _fetch_with(
                b"HTTP/1.1 200 OK\r\nContent-Length: banana\r\n\r\n{}"
            )()
        )


def test_connection_closed_mid_response_is_transport_error():
    # Headers promise 9999 bytes, the peer hangs up after two.
    with pytest.raises(TransportError, match="closed mid-response"):
        asyncio.run(
            _fetch_with(
                b"HTTP/1.1 200 OK\r\nContent-Length: 9999\r\n\r\n{}"
            )()
        )


def test_malformed_status_line_is_transport_error():
    with pytest.raises(TransportError, match="malformed status line"):
        asyncio.run(_fetch_with(b"HTTP/1.1\r\n\r\n")())


def test_transport_error_is_a_service_error():
    """Callers that already catch ServiceError keep working."""
    assert issubclass(TransportError, ServiceError)
    assert TransportError("x").status == 502


def test_missing_content_length_defaults_to_empty_body():
    async def scenario():
        server, port = await _misbehaving_server(b"HTTP/1.1 200 OK\r\n\r\n")
        try:
            client = ServiceClient(port=port)
            status, headers, body = await client._request("GET", "/healthz")
            assert status == 200
            assert body == b""
        finally:
            server.close()
            await server.wait_closed()

    asyncio.run(scenario())
