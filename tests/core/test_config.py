"""Tests for ImprovedConfig (the ablation surface)."""

import pytest

from repro.core.config import ImprovedConfig
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_defaults_enable_everything(self):
        c = ImprovedConfig()
        assert c.lookahead and c.duplication and c.refinement
        assert len(c.rank_variants) >= 2

    def test_empty_variants_rejected(self):
        with pytest.raises(ConfigurationError):
            ImprovedConfig(rank_variants=())

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            ImprovedConfig(rank_variants=("mean", "mode"))  # type: ignore[arg-type]

    def test_duplicate_variants_rejected(self):
        with pytest.raises(ConfigurationError):
            ImprovedConfig(rank_variants=("mean", "mean"))

    def test_negative_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            ImprovedConfig(refinement_rounds=-1)

    def test_frozen(self):
        c = ImprovedConfig()
        with pytest.raises(AttributeError):
            c.lookahead = False  # type: ignore[misc]


class TestPresets:
    def test_baseline_heft_disables_all(self):
        c = ImprovedConfig.baseline_heft()
        assert not (c.lookahead or c.duplication or c.refinement)
        assert c.rank_variants == ("mean",)

    def test_labels(self):
        assert ImprovedConfig().label() == "IMP[rank+la+dup+ref]"
        assert ImprovedConfig.baseline_heft().label() == "IMP[none]"
        assert ImprovedConfig(rank_variants=("mean",), duplication=False).label() == "IMP[la+ref]"
