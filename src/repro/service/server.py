"""Minimal asyncio HTTP endpoint in front of the engine.

Stdlib-only by design (``asyncio.start_server`` + hand-rolled HTTP/1.1
framing): the service has to run in the same environments the library
does, with no web-framework dependency.  The surface is deliberately
tiny:

====================  =================================================
``POST /v1/schedule``  schedule one instance (JSON request document)
``GET  /v1/stats``     :class:`ServiceStats` snapshot as JSON
``GET  /metrics``      Prometheus-style text exposition
``GET  /healthz``      liveness probe
``POST /v1/shutdown``  request a graceful drain-and-exit
====================  =================================================

Error mapping: every :class:`~repro.service.errors.ServiceError`
subclass carries its HTTP status (400 bad request, 429 backpressure,
503 draining, 504 timeout, 500 worker failure), so the handler is a
single try/except.

Two cache layers answer repeats: a byte-exact map from request-body
digest to request key (skips parsing and fingerprinting altogether)
backed by the engine's canonical content-addressed cache (catches the
same instance serialised differently).  Both serve the identical stored
payload, so hits are bit-identical either way.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from collections import OrderedDict

from repro.service.engine import SchedulingEngine
from repro.service.errors import RequestError, ServiceError
from repro.service.protocol import parse_request_doc

#: Largest accepted request body (a ~100k-task instance document).
MAX_BODY = 64 * 1024 * 1024

#: Entries kept in the exact-body fast-path map (body digest -> request
#: key).  Each entry is two hex digests, so this is a few hundred kB.
EXACT_MAP_SIZE = 4096

#: Request header carrying the client's absolute ``time.monotonic()``
#: deadline.  A header (not a body field) so that byte-identical bodies
#: stay byte-identical across requests — the exact-body fast path and
#: the client's body memo both depend on that.
DEADLINE_HEADER = "x-repro-deadline"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ScheduleServer:
    """Serves one :class:`SchedulingEngine` over local TCP."""

    def __init__(self, engine: SchedulingEngine, host: str = "127.0.0.1",
                 port: int = 8787) -> None:
        self.engine = engine
        self.host = host
        self._port = port
        self._server: asyncio.Server | None = None
        self._shutdown = asyncio.Event()
        # Exact-body fast path: sha256(request body) -> request key.  A
        # byte-identical resubmission skips JSON parsing and instance
        # fingerprinting and answers straight from the schedule cache;
        # semantically-equal-but-differently-serialised requests still
        # hit through the canonical fingerprint path in the engine.
        self._exact: OrderedDict[str, str] = OrderedDict()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the engine and begin accepting connections."""
        await self.engine.start()
        self._server = await asyncio.start_server(self._handle, self.host, self._port)

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binding)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._port

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_until_shutdown` to drain and exit."""
        self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`request_shutdown` (or ``POST /v1/shutdown``),
        then stop gracefully."""
        await self._shutdown.wait()
        await self.stop()

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting connections, drain the engine, shut down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.engine.stop(drain=drain)
        self._shutdown.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body, headers = request
            status, content_type, payload, extra = await self._route(
                method, path, body, headers
            )
            await self._write_response(writer, status, content_type, payload, extra)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP/1.x request; returns (method, path, body, headers)."""
        try:
            request_line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        if content_length > MAX_BODY:
            return method, path, b"\x00too-large", headers
        body = await reader.readexactly(content_length) if content_length else b""
        return method, path, body, headers

    async def _route(self, method: str, path: str, body: bytes,
                     headers: dict[str, str] | None = None):
        """Dispatch one request; returns (status, content-type, bytes,
        extra response headers)."""
        headers = headers or {}
        if body.startswith(b"\x00too-large"):
            return self._json(413, {"status": "error", "error": "request body too large"})
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return self._json(405, {"status": "error", "error": "use GET"})
            return self._json(200, {"status": "ok", "draining": self.engine.draining})
        if path == "/metrics":
            if method != "GET":
                return self._json(405, {"status": "error", "error": "use GET"})
            return (200, "text/plain; version=0.0.4",
                    self.engine.render_metrics().encode(), {})
        if path == "/v1/stats":
            if method != "GET":
                return self._json(405, {"status": "error", "error": "use GET"})
            return self._json(200, {"status": "ok", "stats": self.engine.stats().as_dict()})
        if path == "/v1/shutdown":
            if method != "POST":
                return self._json(405, {"status": "error", "error": "use POST"})
            # Respond first, then trip the shutdown event: the caller
            # gets its 200 before the listener closes.
            asyncio.get_running_loop().call_soon(self.request_shutdown)
            return self._json(200, {"status": "ok", "shutting_down": True})
        if path == "/v1/schedule":
            if method != "POST":
                return self._json(405, {"status": "error", "error": "use POST"})
            return await self._handle_schedule(body, headers)
        return self._json(404, {"status": "error", "error": f"no such route {path}"})

    async def _handle_schedule(self, body: bytes, headers: dict[str, str]):
        try:
            deadline = self._parse_deadline(headers)
            body_key = hashlib.sha256(body).hexdigest()
            known_key = self._exact.get(body_key)
            if known_key is not None:
                payload = self.engine.submit_cached(known_key)
                if payload is not None:
                    self._exact.move_to_end(body_key)
                    return self._json(200, {"status": "ok", "result": payload})
            try:
                doc = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise RequestError(f"invalid JSON body: {exc}") from None
            instance, alg, timeout, trace_id = parse_request_doc(doc)
            payload = await self.engine.submit(instance, alg, timeout=timeout,
                                               trace_id=trace_id, deadline=deadline)
            self._remember_exact(body_key, payload["fingerprint"])
        except ServiceError as exc:
            kind = "rejected" if exc.status == 429 else "error"
            extra = {}
            if exc.status == 429:
                hint = getattr(exc, "retry_after", None)
                if hint is None:
                    hint = self.engine.retry_after_hint()
                extra["Retry-After"] = f"{hint:g}"
            return self._json(exc.status, {"status": kind, "error": str(exc)}, extra)
        return self._json(200, {"status": "ok", "result": payload})

    @staticmethod
    def _parse_deadline(headers: dict[str, str]) -> float | None:
        """The client's absolute-monotonic deadline, if it sent one."""
        raw = headers.get(DEADLINE_HEADER)
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            raise RequestError(
                f"invalid {DEADLINE_HEADER} header {raw!r}: "
                "expected an absolute monotonic timestamp"
            ) from None

    def _remember_exact(self, body_key: str, request_key: str) -> None:
        self._exact[body_key] = request_key
        self._exact.move_to_end(body_key)
        while len(self._exact) > EXACT_MAP_SIZE:
            self._exact.popitem(last=False)

    @staticmethod
    def _json(status: int, doc: dict, extra_headers: dict[str, str] | None = None):
        return (status, "application/json", json.dumps(doc).encode("utf-8"),
                extra_headers or {})

    @staticmethod
    async def _write_response(writer: asyncio.StreamWriter, status: int,
                              content_type: str, payload: bytes,
                              extra_headers: dict[str, str] | None = None) -> None:
        reason = _REASONS.get(status, "Unknown")
        extras = "".join(
            f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extras}"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
