"""Plain-text table/series formatting for experiment reports.

The bench harness prints each reproduced figure as a series table (one row
per x-value, one column per scheduler) and each reproduced table directly.
Keeping the formatter here means tests can assert on structure without
caring about benches.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _fmt_cell(value: object, width: int = 0) -> str:
    if isinstance(value, float):
        text = f"{value:.4g}"
    else:
        text = str(value)
    return text.rjust(width) if width else text


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    ``rows`` must all have the same arity as ``headers``; a mismatch is a
    programming error and raises ``ValueError`` rather than printing a
    ragged table.
    """
    headers = [str(h) for h in headers]
    str_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row arity {len(row)} != header arity {len(headers)}: {row!r}"
            )
        str_rows.append([_fmt_cell(c) for c in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out: list[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_series(
    x_name: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render a figure-style series: x column plus one column per series.

    Every series must have one value per x point.  This is the textual
    equivalent of one line-plot from the paper's evaluation section.
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, expected {len(x_values)}"
            )
    headers = [x_name, *series.keys()]
    rows = [
        [x, *(series[name][i] for name in series)]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)
