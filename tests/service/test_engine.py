"""Engine behaviour: caching, coalescing, backpressure, timeout,
cancellation and graceful drain.

These tests run the engine with ``workers=0`` (thread execution) so the
compute function can be monkeypatched — slow and failing computations
become deterministic fixtures instead of races.  The process-pool path
is covered end-to-end by ``test_server_client.py`` and
``test_differential.py``.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.bench import workloads as W
from repro.service import engine as engine_mod
from repro.service import protocol
from repro.service.engine import EngineConfig, SchedulingEngine
from repro.service.errors import (
    ServiceClosedError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    WorkerError,
)
from repro.utils.rng import as_generator


def _instance(seed: int = 7, num_tasks: int = 8):
    return W.random_instance(as_generator(seed), num_tasks=num_tasks, num_procs=3)


def _run(coro):
    return asyncio.run(coro)


def test_cold_then_cached():
    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            inst = _instance()
            cold = await engine.submit(inst, "HEFT")
            warm = await engine.submit(inst, "HEFT")
            assert cold["cache_hit"] is False
            assert warm["cache_hit"] is True
            assert warm["makespan"] == cold["makespan"]
            assert warm["placements"] == cold["placements"]
            assert warm["fingerprint"] == cold["fingerprint"]
            stats = engine.stats()
            assert stats.cache_hits == 1 and stats.cache_misses == 1
            assert stats.completed == 2
        finally:
            await engine.stop()

    _run(scenario())


def test_submit_cached_fast_path():
    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            inst = _instance()
            # Unknown key: silent miss, nothing is accounted.
            assert engine.submit_cached("no-such-key") is None
            assert engine.stats().requests == 0
            cold = await engine.submit(inst, "HEFT")
            fast = engine.submit_cached(cold["fingerprint"])
            assert fast is not None and fast["cache_hit"] is True
            assert fast["placements"] == cold["placements"]
            stats = engine.stats()
            assert stats.requests == 2
            assert stats.cache_hits == 1 and stats.cache_misses == 1
        finally:
            await engine.stop()
        with pytest.raises(ServiceClosedError):
            engine.submit_cached("anything")

    _run(scenario())


def test_different_alg_misses_cache():
    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            inst = _instance()
            a = await engine.submit(inst, "HEFT")
            b = await engine.submit(inst, "CPOP")
            assert b["cache_hit"] is False
            assert a["fingerprint"] != b["fingerprint"]
        finally:
            await engine.stop()

    _run(scenario())


def test_concurrent_identical_requests_coalesce(monkeypatch):
    calls = []
    real = protocol.compute_schedule_payload

    def counting(text, alg):
        calls.append(alg)
        time.sleep(0.05)  # widen the in-flight window
        return real(text, alg)

    monkeypatch.setattr(protocol, "compute_schedule_payload", counting)

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            inst = _instance()
            results = await asyncio.gather(
                *[engine.submit(inst, "HEFT") for _ in range(6)]
            )
            assert len(calls) == 1  # one computation served all six
            assert len({r["makespan"] for r in results}) == 1
            assert engine.stats().coalesced == 5
        finally:
            await engine.stop()

    _run(scenario())


def test_backpressure_rejects_when_queue_full(monkeypatch):
    def slow(text, alg):
        time.sleep(0.3)
        return {"alg": alg, "makespan": 0.0, "placements": []}

    monkeypatch.setattr(protocol, "compute_schedule_payload", slow)

    async def scenario():
        engine = SchedulingEngine(
            EngineConfig(workers=0, queue_depth=1, batch_size=1, default_timeout=5.0)
        )
        await engine.start()
        try:
            instances = [_instance(seed) for seed in range(8)]
            tasks = [asyncio.create_task(engine.submit(i, "HEFT")) for i in instances]
            done = await asyncio.gather(*tasks, return_exceptions=True)
            rejected = [r for r in done if isinstance(r, ServiceOverloadedError)]
            served = [r for r in done if isinstance(r, dict)]
            assert rejected, "a full queue must shed load with 429"
            assert served, "requests accepted before saturation must complete"
            assert engine.stats().rejected == len(rejected)
        finally:
            await engine.stop()

    _run(scenario())


def test_per_request_timeout(monkeypatch):
    def slow(text, alg):
        time.sleep(0.4)
        return {"alg": alg, "makespan": 0.0, "placements": []}

    monkeypatch.setattr(protocol, "compute_schedule_payload", slow)

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            with pytest.raises(ServiceTimeoutError):
                await engine.submit(_instance(), "HEFT", timeout=0.05)
            assert engine.stats().timeouts == 1
        finally:
            await engine.stop()

    _run(scenario())


def test_timeout_does_not_kill_shared_computation(monkeypatch):
    real = protocol.compute_schedule_payload

    def slow(text, alg):
        time.sleep(0.2)
        return real(text, alg)

    monkeypatch.setattr(protocol, "compute_schedule_payload", slow)

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            inst = _instance()
            with pytest.raises(ServiceTimeoutError):
                await engine.submit(inst, "HEFT", timeout=0.05)
            # The shielded computation finishes and lands in the cache...
            await asyncio.sleep(0.4)
            assert len(engine.cache) == 1
            # ...so the retry is a hit, not a recompute.
            retry = await engine.submit(inst, "HEFT")
            assert retry["cache_hit"] is True
        finally:
            await engine.stop()

    _run(scenario())


def test_cancelled_waiter_leaves_computation_running(monkeypatch):
    real = protocol.compute_schedule_payload

    def slow(text, alg):
        time.sleep(0.2)
        return real(text, alg)

    monkeypatch.setattr(protocol, "compute_schedule_payload", slow)

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            inst = _instance()
            waiter = asyncio.create_task(engine.submit(inst, "HEFT"))
            await asyncio.sleep(0.05)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            await asyncio.sleep(0.4)
            assert len(engine.cache) == 1  # work survived the client
        finally:
            await engine.stop()

    _run(scenario())


def test_worker_failure_maps_to_worker_error(monkeypatch):
    def broken(text, alg):
        raise RuntimeError("scheduler exploded")

    monkeypatch.setattr(protocol, "compute_schedule_payload", broken)

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            with pytest.raises(WorkerError, match="scheduler exploded"):
                await engine.submit(_instance(), "HEFT")
            assert engine.stats().errors == 1
            assert len(engine.cache) == 0  # failures are never cached
        finally:
            await engine.stop()

    _run(scenario())


def test_graceful_drain_completes_inflight_work(monkeypatch):
    real = protocol.compute_schedule_payload

    def slow(text, alg):
        time.sleep(0.1)
        return real(text, alg)

    monkeypatch.setattr(protocol, "compute_schedule_payload", slow)

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0, queue_depth=16))
        await engine.start()
        instances = [_instance(seed) for seed in range(3)]
        waiters = [asyncio.create_task(engine.submit(i, "HEFT")) for i in instances]
        await asyncio.sleep(0.02)  # let them enqueue
        await engine.stop(drain=True)
        results = await asyncio.gather(*waiters)
        assert all(isinstance(r, dict) and r["placements"] for r in results)
        # After the drain, new work is refused.
        with pytest.raises(ServiceClosedError):
            await engine.submit(instances[0], "HEFT")

    _run(scenario())


def test_submit_before_start_refused():
    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        with pytest.raises(ServiceClosedError):
            await engine.submit(_instance(), "HEFT")

    _run(scenario())


def test_batching_dispatches_queued_requests_together(monkeypatch):
    real = protocol.compute_schedule_payload

    def slow(text, alg):
        time.sleep(0.05)
        return real(text, alg)

    monkeypatch.setattr(protocol, "compute_schedule_payload", slow)

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0, batch_size=8, queue_depth=16))
        await engine.start()
        try:
            instances = [_instance(seed) for seed in range(5)]
            await asyncio.gather(*[engine.submit(i, "HEFT") for i in instances])
            stats = engine.stats()
            assert stats.batched_jobs == 5
            assert stats.batches < 5, "queued requests should coalesce into batches"
        finally:
            await engine.stop()

    _run(scenario())


def test_engine_config_validation():
    with pytest.raises(ValueError):
        EngineConfig(workers=-1)
    with pytest.raises(ValueError):
        EngineConfig(queue_depth=0)
    with pytest.raises(ValueError):
        EngineConfig(batch_size=0)
    with pytest.raises(ValueError):
        EngineConfig(default_timeout=0)


def test_warm_worker_importable():
    # The warmup function runs inside forked pool workers; keep it callable.
    engine_mod._warm_worker()
