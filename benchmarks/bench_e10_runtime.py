"""E10 — Scheduler running time vs DAG size.

Expected shape: HEFT/HCPT/PETS/MCP are the cheap O(e*q) tier; DLS/ETF
pay the dynamic-selection quadratic factor; the improved scheduler costs
a constant factor over HEFT (multiple passes + lookahead + duplication)
— the price E12 shows buys its quality.  pytest-benchmark's own timings
on representative instances are the primary artifact here.
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e10, e10_data
from repro.schedulers.registry import get_scheduler


def test_e10_shape(quick):
    xs, seconds = e10_data(quick)
    print("\n" + e10(quick))
    # Time grows with size for every scheduler.
    for name, vals in seconds.items():
        assert vals[-1] > vals[0], name
    # IMP is slower than HEFT (it does strictly more work) but within a
    # sane constant factor at the measured sizes.
    for i, _ in enumerate(xs):
        ratio = seconds["IMP"][i] / seconds["HEFT"][i]
        assert 1.0 <= ratio < 400.0


def _bench_scheduler(benchmark, name: str, n: int = 100):
    rng = np.random.default_rng(210)
    inst = W.random_instance(rng, num_tasks=n)
    result = benchmark(get_scheduler(name).schedule, inst)
    assert result.makespan > 0


def test_e10_benchmark_heft(benchmark):
    _bench_scheduler(benchmark, "HEFT")


def test_e10_benchmark_cpop(benchmark):
    _bench_scheduler(benchmark, "CPOP")


def test_e10_benchmark_hcpt(benchmark):
    _bench_scheduler(benchmark, "HCPT")


def test_e10_benchmark_pets(benchmark):
    _bench_scheduler(benchmark, "PETS")


def test_e10_benchmark_dls(benchmark):
    _bench_scheduler(benchmark, "DLS")


def test_e10_benchmark_etf(benchmark):
    _bench_scheduler(benchmark, "ETF")


def test_e10_benchmark_mcp(benchmark):
    _bench_scheduler(benchmark, "MCP")


def test_e10_benchmark_la_heft(benchmark):
    _bench_scheduler(benchmark, "LA-HEFT")


def test_e10_benchmark_dup_heft(benchmark):
    _bench_scheduler(benchmark, "DUP-HEFT")


def test_e10_benchmark_imp(benchmark):
    _bench_scheduler(benchmark, "IMP")
