#!/usr/bin/env python3
"""Quickstart: build a DAG, build a machine, schedule, inspect.

Run:  python examples/quickstart.py
"""

from repro import (
    HEFT,
    ImprovedScheduler,
    Task,
    TaskDAG,
    make_instance,
    slr,
    speedup,
    validate,
)

# ----------------------------------------------------------------------
# 1. Describe the application as a weighted DAG.
#    Task costs are nominal compute work; edge data is transfer volume.
# ----------------------------------------------------------------------
dag = TaskDAG("preprocessing-pipeline")
dag.add_task(Task("load", cost=4.0))
dag.add_task(Task("parse", cost=6.0))
dag.add_task(Task("clean", cost=5.0))
dag.add_task(Task("features-a", cost=9.0))
dag.add_task(Task("features-b", cost=7.0))
dag.add_task(Task("merge", cost=3.0))
dag.add_task(Task("train", cost=14.0))

dag.add_edge("load", "parse", data=8.0)
dag.add_edge("parse", "clean", data=6.0)
dag.add_edge("clean", "features-a", data=5.0)
dag.add_edge("clean", "features-b", data=5.0)
dag.add_edge("features-a", "merge", data=4.0)
dag.add_edge("features-b", "merge", data=4.0)
dag.add_edge("merge", "train", data=10.0)

# ----------------------------------------------------------------------
# 2. Describe the target system: 3 processors, heterogeneity beta = 0.5,
#    fully connected network with unit bandwidth.  The seed fixes the
#    random ETC matrix so the run is reproducible.
# ----------------------------------------------------------------------
instance = make_instance(dag, num_procs=3, heterogeneity=0.5, seed=2007)

# ----------------------------------------------------------------------
# 3. Schedule with the HEFT baseline and the improved algorithm.
# ----------------------------------------------------------------------
for scheduler in (HEFT(), ImprovedScheduler()):
    schedule = scheduler.schedule(instance)
    validate(schedule, instance)  # feasibility check (raises on violation)
    print(f"{scheduler.name:>5}:  makespan={schedule.makespan:7.3f}  "
          f"SLR={slr(schedule, instance):.3f}  "
          f"speedup={speedup(schedule, instance):.3f}")

# ----------------------------------------------------------------------
# 4. Inspect the improved schedule.
# ----------------------------------------------------------------------
best = ImprovedScheduler().schedule(instance)
print()
print(best.gantt(width=64))
print()
for task in dag.topological_order():
    placed = best.entry(task)
    print(f"  {task:<12} -> P{placed.proc}  [{placed.start:7.3f}, {placed.end:7.3f})")
