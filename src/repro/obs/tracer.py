"""The tracer core: spans, counters, gauges; thread-safe; no-op default.

Design constraints, in order:

1. **The disabled path must cost nothing.**  The module default is a
   shared :class:`NullTracer`; ``span()`` on it returns one preallocated
   no-op context manager and ``count``/``gauge`` return immediately.
   Hot loops additionally guard per-item spans behind
   ``tracer.enabled``, so the per-task cost with tracing off is a
   single attribute read (asserted <2% on the compiled decode and HEFT
   hot paths by ``benchmarks/bench_obs.py``).
2. **Thread-safe recording, thread-local nesting.**  Finished spans,
   counters and gauges live behind one lock; the *parent* of a new span
   comes from a per-thread stack, so concurrent schedulers produce
   correctly nested, independent subtrees.  Async code (the service
   engine), where one thread interleaves many logical requests, passes
   ``parent=`` explicitly instead — explicit-parent spans never touch
   the stack.
3. **Bounded memory.**  A long-running service must be traceable
   forever: the span store is a ``deque(maxlen=max_spans)``; counters
   and gauges are keyed by a fixed vocabulary of instrument names.

Spans are stored as plain dicts (``name``, ``id``, ``parent``, ``pid``,
``tid``, ``t0``, ``t1``, ``attrs``) so a worker process can export its
trace, ship it over a pickle boundary and have the parent
:meth:`Tracer.absorb` it into one merged trace.  Timestamps come from
``time.perf_counter()`` (CLOCK_MONOTONIC — one timebase across local
processes on the platforms we run on).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


class _NullSpan:
    """The shared do-nothing span handle of :class:`NullTracer`."""

    __slots__ = ()
    sid = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """One active span; records itself on the tracer when it exits."""

    __slots__ = ("_tracer", "name", "sid", "parent", "attrs", "t0", "t1", "_on_stack")

    def __init__(self, tracer: "Tracer", name: str, sid: int,
                 parent: int | None, on_stack: bool, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.sid = sid
        self.parent = parent
        self.attrs = attrs
        self.t0 = 0.0
        self.t1 = 0.0
        self._on_stack = on_stack

    def set(self, **attrs) -> None:
        """Attach attributes to the span while (or after) it is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        if self._on_stack:
            stack = tracer._stack()
            if self.parent is None and stack:
                self.parent = stack[-1]
            stack.append(self.sid)
        self.t0 = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        self.t1 = tracer._clock()
        if self._on_stack:
            stack = tracer._stack()
            if stack and stack[-1] == self.sid:
                stack.pop()
            elif self.sid in stack:  # pragma: no cover - defensive
                stack.remove(self.sid)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        tracer._record(self)
        return False


class Tracer:
    """A recording tracer: span tree + counters + gauges.

    Parameters
    ----------
    name:
        Label carried into exported traces (Chrome process name).
    max_spans:
        Bound on retained finished spans (oldest dropped first), so an
        always-on tracer — the service engine's — cannot grow without
        limit.
    clock:
        Injectable monotonic clock, for deterministic tests/fixtures.
    """

    enabled = True

    def __init__(self, name: str = "trace", max_spans: int = 100_000,
                 clock: Callable[[], float] | None = None) -> None:
        from collections import deque

        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.name = name
        self.max_spans = max_spans
        self._clock = clock or time.perf_counter
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._spans: "deque[dict]" = deque(maxlen=max_spans)
        self._dropped = 0
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._local = threading.local()
        self._pid = os.getpid()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, *, parent: int | None = None,
             detach: bool = False, **attrs) -> _Span:
        """A context manager timing one phase.

        With no keywords the span nests under the innermost open span of
        the *current thread*.  ``parent=<sid>`` links it explicitly (and
        keeps it off the thread stack) — required in async code where
        one thread interleaves many logical operations.  ``detach=True``
        makes an explicit root.
        """
        on_stack = parent is None and not detach
        return _Span(self, name, next(self._ids), parent, on_stack, attrs)

    def record_span(self, name: str, t0: float, t1: float, *,
                    parent: int | None = None, **attrs) -> int:
        """Record an already-measured interval (e.g. queue wait) as a span."""
        span = _Span(self, name, next(self._ids), parent, False, attrs)
        span.t0 = t0
        span.t1 = t1
        self._record(span)
        return span.sid

    def _record(self, span: _Span) -> None:
        entry = {
            "name": span.name,
            "id": span.sid,
            "parent": span.parent,
            "pid": self._pid,
            "tid": threading.get_ident(),
            "t0": span.t0,
            "t1": span.t1,
            "attrs": span.attrs,
        }
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self._dropped += 1
            self._spans.append(entry)

    def count(self, name: str, inc: float = 1) -> None:
        """Increment a monotonic counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + inc

    def gauge(self, name: str, value: float) -> None:
        """Set a last-write-wins gauge."""
        with self._lock:
            self._gauges[name] = value

    # ------------------------------------------------------------------
    # reading / merging
    # ------------------------------------------------------------------
    def spans(self) -> list[dict]:
        """Finished spans in completion order (copies of the entries)."""
        with self._lock:
            return [dict(s) for s in self._spans]

    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    @property
    def dropped_spans(self) -> int:
        """Spans evicted by the ``max_spans`` bound."""
        with self._lock:
            return self._dropped

    def export(self) -> dict:
        """The whole trace as one picklable/JSON-able dict."""
        with self._lock:
            return {
                "name": self.name,
                "spans": [dict(s) for s in self._spans],
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
            }

    def absorb(self, trace: dict | Sequence[dict], *,
               parent: int | None = None) -> dict[int, int]:
        """Merge a foreign trace (a worker's :meth:`export`) into this one.

        Foreign span ids are remapped onto this tracer's id sequence
        (parent links inside the batch follow); foreign *root* spans are
        attached under ``parent`` when given.  Foreign counters add into
        this tracer's counters; gauges overwrite.  Returns the id map.
        Original ``pid``/``tid`` values are preserved, so a merged trace
        still shows which process did the work.
        """
        if isinstance(trace, dict):
            spans = trace.get("spans", [])
            counters = trace.get("counters", {})
            gauges = trace.get("gauges", {})
        else:
            spans, counters, gauges = list(trace), {}, {}
        id_map: dict[int, int] = {}
        for entry in spans:
            id_map[entry["id"]] = next(self._ids)
        with self._lock:
            for entry in spans:
                old_parent = entry.get("parent")
                merged = dict(entry)
                merged["id"] = id_map[entry["id"]]
                merged["parent"] = id_map.get(old_parent, parent)
                if len(self._spans) == self._spans.maxlen:
                    self._dropped += 1
                self._spans.append(merged)
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(gauges)
        return id_map

    def clear(self) -> None:
        """Drop all recorded spans, counters and gauges."""
        with self._lock:
            self._spans.clear()
            self._counters.clear()
            self._gauges.clear()
            self._dropped = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(name={self.name!r}, spans={len(self._spans)}, "
            f"counters={len(self._counters)})"
        )


class NullTracer:
    """The do-nothing tracer: every operation returns immediately.

    ``enabled`` is ``False`` so hot loops can skip even the cheap no-op
    calls for per-item spans.
    """

    enabled = False
    name = "null"

    def span(self, name: str, *, parent: int | None = None,
             detach: bool = False, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name: str, t0: float, t1: float, *,
                    parent: int | None = None, **attrs) -> None:
        return None

    def count(self, name: str, inc: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def spans(self) -> list[dict]:
        return []

    def counters(self) -> dict[str, float]:
        return {}

    def gauges(self) -> dict[str, float]:
        return {}

    def export(self) -> dict:
        return {"name": self.name, "spans": [], "counters": {}, "gauges": {}}

    def absorb(self, trace, *, parent: int | None = None) -> dict[int, int]:
        return {}

    def clear(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


#: The shared no-op tracer (also the initial module default).
NULL_TRACER = NullTracer()

_TRACER: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-wide current tracer (the no-op default unless set)."""
    return _TRACER


def set_tracer(tracer: Tracer | NullTracer | None) -> None:
    """Install ``tracer`` as the process-wide default (``None`` resets)."""
    global _TRACER
    _TRACER = tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer: Tracer | NullTracer) -> Iterator[Tracer | NullTracer]:
    """Temporarily install ``tracer`` as the module default.

    The previous tracer is restored even on exception — the same
    discipline as :func:`repro.kernels.use_kernels`.
    """
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    try:
        yield tracer
    finally:
        _TRACER = previous
