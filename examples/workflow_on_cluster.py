#!/usr/bin/env python3
"""Scheduling a Montage-style astronomy workflow on a realistic
heterogeneous cluster with non-trivial network topologies.

Demonstrates:
* the workflow generators,
* speed-scaled (consistent) heterogeneity from processor speeds,
* topology-aware communication models (star vs fully connected),
* reading per-task placements off the schedule.

Run:  python examples/workflow_on_cluster.py
"""

from repro import slr, speedup, validate
from repro.dag.generators import montage_dag
from repro.instance import Instance
from repro.machine import etc_from_speeds, fully_connected_machine, star_machine
from repro.schedulers import get_scheduler

IMAGES = 12
dag = montage_dag(IMAGES, cost_scale=10.0, data_scale=25.0, seed=99)
print(f"workflow: {dag.name} — {dag.num_tasks} tasks, {dag.num_edges} edges, "
      f"CCR={dag.ccr():.2f}\n")

# A small heterogeneous cluster: two fast nodes, four slow ones.
SPEEDS = [2.0, 2.0, 1.0, 1.0, 1.0, 1.0]

for label, machine in [
    ("fully connected", fully_connected_machine(len(SPEEDS), SPEEDS, latency=0.5, bandwidth=8.0)),
    ("star (hub = node 0)", star_machine(len(SPEEDS), SPEEDS, latency=0.5, bandwidth=8.0)),
]:
    instance = Instance(dag=dag, machine=machine, etc=etc_from_speeds(dag, machine))
    print(f"--- {label} ---")
    for alg in ("HEFT", "CPOP", "IMP"):
        schedule = get_scheduler(alg).schedule(instance)
        validate(schedule, instance)
        print(f"  {alg:5} makespan={schedule.makespan:8.2f}  "
              f"SLR={slr(schedule, instance):.3f}  speedup={speedup(schedule, instance):.3f}")
    best = get_scheduler("IMP").schedule(instance)
    fast_work = sum(
        p.duration for proc in (0, 1) for p in best.proc_entries(proc)
    )
    total_work = sum(p.duration for p in best.all_placements())
    print(f"  IMP places {100 * fast_work / total_work:.0f}% of executed time "
          f"on the two fast nodes\n")

# Where did the expensive steps go?
machine = fully_connected_machine(len(SPEEDS), SPEEDS, latency=0.5, bandwidth=8.0)
instance = Instance(dag=dag, machine=machine, etc=etc_from_speeds(dag, machine))
schedule = get_scheduler("IMP").schedule(instance)
print("placement of the serial bottleneck steps:")
for tid in ("concatfit", "bgmodel", "imgtbl", "madd", "jpeg"):
    placed = schedule.entry(tid)
    print(f"  {dag.task(tid).name:<12} -> P{placed.proc} "
          f"(speed {machine.speed(placed.proc):g}) at t={placed.start:.1f}")
