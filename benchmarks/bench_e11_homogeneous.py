"""E11 — Homogeneous system: SLR vs DAG size.

The "and homogeneous computing systems" half of the paper's title.
Expected shape: with identical processors the improved scheduler still
dominates HEFT (via lookahead + refinement) and holds its own against
the homogeneous classics (MCP, ETF, DLS, HLFET).
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e11_data
from repro.schedulers.registry import get_scheduler

from conftest import series_mean


def test_e11_shape(quick):
    res = e11_data(quick)
    print("\n" + res.table("E11: homogeneous machine, SLR vs size"))
    assert series_mean(res, "IMP") <= series_mean(res, "HEFT") + 1e-9
    # Holds its own against every homogeneous classic on average.
    for name in W.COMPARED_HOMOGENEOUS:
        if name == "IMP":
            continue
        assert series_mean(res, "IMP") <= series_mean(res, name) + 1e-9, name


def test_e11_homogeneity_really_homogeneous(quick):
    rng = np.random.default_rng(211)
    inst = W.homogeneous_random_instance(rng, num_tasks=50)
    assert inst.is_homogeneous()


def test_e11_benchmark(benchmark):
    rng = np.random.default_rng(211)
    inst = W.homogeneous_random_instance(rng, num_tasks=100)
    result = benchmark(get_scheduler("IMP").schedule, inst)
    assert result.makespan > 0
