"""Tests for the sweep runner."""

import pytest

from repro.bench.runner import METRICS, run_instances, run_sweep
from repro.bench import workloads as W
from repro.exceptions import ConfigurationError
from repro.utils.rng import spawn_children


def tiny_factory(x, rng):
    return W.random_instance(rng, num_tasks=int(x), num_procs=3)


class TestRunSweep:
    def test_shape_of_result(self):
        res = run_sweep(["HEFT", "CPOP"], "n", [10, 20], tiny_factory, reps=2, seed=1)
        assert res.x_values == [10, 20]
        assert set(res.series) == {"HEFT", "CPOP"}
        assert len(res.series["HEFT"]) == 2
        assert len(res.raw["HEFT"][0]) == 2

    def test_deterministic(self):
        a = run_sweep(["HEFT"], "n", [15], tiny_factory, reps=2, seed=3)
        b = run_sweep(["HEFT"], "n", [15], tiny_factory, reps=2, seed=3)
        assert a.series == b.series

    def test_paired_instances(self):
        # Both schedulers see the same instances: Random with the same
        # seed as itself must produce identical series.
        res = run_sweep(["HEFT", "HEFT-median"], "n", [12], tiny_factory, reps=3, seed=4)
        # means are finite and positive SLRs
        for vals in res.series.values():
            assert all(v >= 1.0 - 1e-9 for v in vals)

    def test_metric_selection(self):
        res = run_sweep(["HEFT"], "n", [12], tiny_factory, reps=1, metric="speedup", seed=5)
        assert res.metric == "speedup"
        assert res.series["HEFT"][0] > 0

    def test_unknown_metric(self):
        with pytest.raises(ConfigurationError):
            run_sweep(["HEFT"], "n", [10], tiny_factory, metric="nope")

    def test_bad_reps(self):
        with pytest.raises(ConfigurationError):
            run_sweep(["HEFT"], "n", [10], tiny_factory, reps=0)

    def test_table_renders(self):
        res = run_sweep(["HEFT"], "n", [10], tiny_factory, reps=1, seed=6)
        text = res.table("demo")
        assert "demo" in text and "HEFT" in text

    def test_best_at(self):
        res = run_sweep(["HEFT", "Random"], "n", [20], tiny_factory, reps=3, seed=7)
        assert res.best_at(0) == "HEFT"

    def test_best_at_higher_better(self):
        res = run_sweep(
            ["HEFT", "Random"], "n", [20], tiny_factory, reps=3,
            metric="speedup", seed=7,
        )
        assert res.best_at(0) == "HEFT"

    def test_mean_over_x(self):
        res = run_sweep(["HEFT"], "n", [10, 20], tiny_factory, reps=1, seed=8)
        assert res.mean_over_x("HEFT") == pytest.approx(
            sum(res.series["HEFT"]) / 2
        )

    def test_sched_seconds_recorded(self):
        res = run_sweep(["HEFT"], "n", [10], tiny_factory, reps=1, seed=9)
        assert res.sched_seconds["HEFT"] > 0


class TestRunInstances:
    def test_aligned_output(self):
        instances = [tiny_factory(10, rng) for rng in spawn_children(0, 3)]
        out = run_instances(["HEFT", "CPOP"], instances)
        assert len(out["HEFT"]) == len(out["CPOP"]) == 3

    def test_all_metrics_registered(self):
        assert {"slr", "speedup", "efficiency", "makespan"} <= set(METRICS)
