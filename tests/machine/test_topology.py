"""Tests for the interconnect-topology builders."""

import pytest

from repro.exceptions import MachineError
from repro.machine.topology import (
    bus_machine,
    fully_connected_machine,
    mesh_machine,
    ring_machine,
    star_machine,
)


class TestFullyConnected:
    def test_uniform_pairs(self):
        m = fully_connected_machine(4, latency=1.0, bandwidth=2.0)
        assert m.comm_time(4.0, 0, 3) == pytest.approx(3.0)
        assert m.comm_time(4.0, 2, 1) == pytest.approx(3.0)

    def test_speeds(self):
        m = fully_connected_machine(3, speeds=[1.0, 2.0, 3.0])
        assert m.speed(2) == 3.0

    def test_speed_arity_checked(self):
        with pytest.raises(MachineError):
            fully_connected_machine(3, speeds=[1.0])


class TestStar:
    def test_hub_one_hop(self):
        m = star_machine(4, latency=1.0, bandwidth=1.0)
        assert m.comm_time(2.0, 0, 3) == pytest.approx(1.0 + 2.0)

    def test_leaf_to_leaf_two_hops(self):
        m = star_machine(4, latency=1.0, bandwidth=1.0)
        assert m.comm_time(2.0, 1, 3) == pytest.approx(2.0 + 2.0)

    def test_single_proc(self):
        m = star_machine(1)
        assert m.num_procs == 1


class TestRing:
    def test_shorter_arc_used(self):
        m = ring_machine(6, latency=1.0, bandwidth=1.0)
        # 0 -> 3 is 3 hops either way; 0 -> 5 is 1 hop.
        assert m.comm_time(0.0, 0, 3) == pytest.approx(3.0)
        assert m.comm_time(0.0, 0, 5) == pytest.approx(1.0)

    def test_two_procs(self):
        m = ring_machine(2, latency=1.0, bandwidth=1.0)
        assert m.comm_time(0.0, 0, 1) == pytest.approx(1.0)


class TestMesh:
    def test_manhattan_hops(self):
        m = mesh_machine(3, 3, latency=1.0, bandwidth=1.0)
        # corner (0,0)=id0 to corner (2,2)=id8: 4 hops
        assert m.comm_time(0.0, 0, 8) == pytest.approx(4.0)
        # (0,0) to (0,1)=id1: 1 hop
        assert m.comm_time(0.0, 0, 1) == pytest.approx(1.0)

    def test_row_major_ids(self):
        m = mesh_machine(2, 3)
        assert m.num_procs == 6

    def test_bad_dims(self):
        with pytest.raises(MachineError):
            mesh_machine(0, 3)


class TestBus:
    def test_single_hop_everywhere(self):
        m = bus_machine(5, latency=2.0, bandwidth=4.0)
        assert m.comm_time(8.0, 0, 4) == pytest.approx(4.0)

    def test_local_free_all_topologies(self):
        for m in (
            fully_connected_machine(3, latency=1.0),
            bus_machine(3, latency=1.0),
            star_machine(3, latency=1.0),
            ring_machine(3, latency=1.0),
            mesh_machine(2, 2, latency=1.0),
        ):
            for p in m.proc_ids():
                assert m.comm_time(9.0, p, p) == 0.0
