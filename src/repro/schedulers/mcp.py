"""MCP — Modified Critical Path (Wu & Gajski, 1990).

The classic homogeneous-system baseline.  Each task's priority is its
ALAP time; ties are broken by comparing the sorted ALAP lists of the
task's descendants (implemented here as the task's children's ALAPs,
the standard practical refinement), then by topological position.
Placement is insertion-based earliest start.

On heterogeneous instances the ALAPs are computed with machine-averaged
costs, which is the conventional adaptation.
"""

from __future__ import annotations

from repro.instance import Instance
from repro.schedulers.base import (
    ListScheduler,
    Placement,
    est_placement,
    topological_by_priority,
)
from repro.schedule.schedule import Schedule
from repro.schedulers.ranking import alap_times
from repro.types import TaskId


class MCP(ListScheduler):
    """Modified Critical Path scheduler."""

    insertion = True
    name = "MCP"
    compiled_policy = "est"

    def priority_order(self, instance: Instance) -> list[TaskId]:
        dag = instance.dag
        alap = alap_times(instance, agg="mean")
        pos = {t: i for i, t in enumerate(dag.topological_order())}

        def key(t: TaskId):
            child_alaps = tuple(sorted(alap[s] for s in dag.successors(t)))
            return (alap[t], child_alaps, pos[t])

        # Ascending ALAP is topological for positive weights, but zero-cost
        # zero-communication chains can tie or invert; the priority-driven
        # Kahn pass keeps the order legal in those corners too.
        return topological_by_priority(dag, key)

    def place(self, schedule: Schedule, instance: Instance, task: TaskId) -> Placement:
        return est_placement(schedule, instance, task, insertion=True)
