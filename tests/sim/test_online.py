"""The online multi-tenant simulator: placement equivalence, policies,
noise, metrics and validation."""

import json

import pytest

from repro.dag.generators import random_dag
from repro.exceptions import ConfigurationError
from repro.instance import Instance
from repro.machine.cluster import Machine
from repro.machine.comm import LinkCommunication
from repro.machine.etc import generate_etc
from repro.machine.processor import Processor
from repro.sim import (
    PoissonArrivals,
    TraceArrivals,
    build_templates,
    simulate_online,
    trace_from_json,
    trace_to_json,
)


@pytest.fixture(scope="module")
def templates():
    return build_templates(num_templates=3, num_tasks=14, num_procs=4, seed=2)


@pytest.fixture(scope="module")
def stream(templates):
    return PoissonArrivals(rate=0.06, jobs=40, seed=11).realize(sorted(templates))


class TestEquivalence:
    def test_cached_equals_full_relowering(self, templates, stream):
        cached = simulate_online(templates, stream, relower="cached")
        full = simulate_online(templates, stream, relower="full")
        assert cached.payload_json() == full.payload_json()

    def test_compiled_equals_object_path(self, templates, stream):
        fast = simulate_online(templates, stream)
        slow = simulate_online(templates, stream, use_compiled=False)
        assert fast.compiled and not slow.compiled
        assert fast.payload_json() == slow.payload_json()

    def test_compiled_equals_object_under_policy_and_noise(self, templates, stream):
        kw = dict(policy="replace", noise_cv=0.3, seed=5)
        fast = simulate_online(templates, stream, **kw)
        slow = simulate_online(templates, stream, use_compiled=False, **kw)
        assert fast.payload_json() == slow.payload_json()

    @pytest.mark.parametrize("alg", ["HEFT", "HCPT", "HLFET", "MCP"])
    def test_alg_parity_both_paths(self, templates, stream, alg):
        fast = simulate_online(templates, stream, alg=alg)
        slow = simulate_online(templates, stream, alg=alg, use_compiled=False)
        assert fast.payload_json() == slow.payload_json()


class TestSemantics:
    def test_every_job_completes(self, templates, stream):
        res = simulate_online(templates, stream)
        assert len(res.jobs) == len(stream)
        assert [r.job_id for r in res.jobs] == [a.job_id for a in stream]

    def test_no_job_starts_before_arrival(self, templates, stream):
        res = simulate_online(templates, stream, policy="replace")
        for rec in res.jobs:
            assert rec.start >= rec.arrival - 1e-9
            assert rec.finish >= rec.start

    def test_slowdown_at_least_one_without_noise(self, templates, stream):
        res = simulate_online(templates, stream)
        assert all(s >= 1.0 - 1e-9 for s in res.slowdowns())

    def test_queue_policy_never_replans(self, templates, stream):
        res = simulate_online(templates, stream, policy="queue")
        assert res.replans == 0
        assert all(rec.replans == 0 for rec in res.jobs)

    def test_replace_policy_reorders_pending_work(self, templates, stream):
        # SJF over pending jobs is a heuristic (no universal-improvement
        # guarantee on stochastic streams); assert it acts, and that the
        # result is still a valid complete simulation.
        fifo = simulate_online(templates, stream, policy="queue")
        sjf = simulate_online(templates, stream, policy="replace")
        assert sjf.replans > 0
        assert sjf.payload_json() != fifo.payload_json()
        assert len(sjf.jobs) == len(stream)
        assert all(s >= 1.0 - 1e-9 for s in sjf.slowdowns())

    def test_replace_policy_improves_engineered_workload(self):
        # One processor, one long template, one short one.  The short
        # job arrives while a long job is *pending* behind a running
        # long job: FIFO queues it after both; SJF slips it in front of
        # the pending long job, provably shrinking mean slowdown.
        machine = Machine.homogeneous(1, name="serial")
        insts = {}
        for name, tasks, seed in (("long", 20, 0), ("short", 2, 1)):
            dag = random_dag(tasks, ccr=0.0, seed=seed)
            etc = generate_etc(dag, machine, heterogeneity=0.2, seed=seed)
            insts[name] = Instance(dag=dag, machine=machine, etc=etc, name=name)
        arr = TraceArrivals(
            [(0.0, "long"), (1.0, "long"), (2.0, "short")]
        ).realize(sorted(insts))
        fifo = simulate_online(insts, arr, policy="queue")
        sjf = simulate_online(insts, arr, policy="replace")
        assert sjf.replans >= 1
        assert (
            sjf.metrics_dict()["slowdown_mean"]
            < fifo.metrics_dict()["slowdown_mean"]
        )

    def test_preempt_policy_bounded(self, templates, stream):
        res = simulate_online(templates, stream, policy="preempt-1")
        # Each arrival may displace at most one pending job.
        assert 0 < res.replans <= len(stream)

    def test_compaction_happens_and_accounting_is_exact(self, templates, stream):
        res = simulate_online(templates, stream)
        assert res.compacted > 0
        assert 0.0 < res.metrics_dict()["utilization"] <= 1.0

    def test_isolated_jobs_match_static_baseline(self, templates):
        # Arrivals so far apart that the cluster is empty each time:
        # every job's response equals its template's static makespan.
        names = sorted(templates)
        arr = trace_from_json(
            trace_to_json(
                PoissonArrivals(rate=1e-6, jobs=6, seed=1).realize(names)
            )
        ).realize(names)
        res = simulate_online(templates, arr)
        for rec, s in zip(res.jobs, res.slowdowns()):
            assert s == pytest.approx(1.0, abs=1e-9)

    def test_metrics_use_nearest_rank_percentiles(self, templates, stream):
        res = simulate_online(templates, stream)
        m = res.metrics_dict()
        responses = sorted(r.response for r in res.jobs)
        assert m["response_p99"] == responses[-1]  # ceil(0.99*40)=40
        assert m["response_p50"] == responses[19]  # ceil(0.5*40)=20


class TestNoise:
    def test_noise_changes_outcome_deterministically(self, templates, stream):
        clean = simulate_online(templates, stream)
        n1 = simulate_online(templates, stream, noise_cv=0.25, seed=3)
        n2 = simulate_online(templates, stream, noise_cv=0.25, seed=3)
        n3 = simulate_online(templates, stream, noise_cv=0.25, seed=4)
        assert n1.payload_json() == n2.payload_json()
        assert n1.payload_json() != clean.payload_json()
        assert n1.payload_json() != n3.payload_json()

    def test_replanned_jobs_replay_their_factors(self, templates, stream):
        # Same noise seed, policies that replan: still deterministic.
        a = simulate_online(templates, stream, policy="replace", noise_cv=0.2, seed=7)
        b = simulate_online(templates, stream, policy="replace", noise_cv=0.2, seed=7)
        assert a.payload_json() == b.payload_json()


class TestPerLinkFallback:
    def test_object_mirror_covers_per_link_machines(self):
        ids = [0, 1, 2]
        lat = {p: {q: 0.1 * (1 + (p + q) % 3) for q in ids if q != p} for p in ids}
        bw = {p: {q: 1.0 + ((p * 7 + q) % 5) for q in ids if q != p} for p in ids}
        machine = Machine(
            [Processor(id=i, speed=1.0) for i in ids],
            comm=LinkCommunication(ids, lat, bw),
            name="links",
        )
        templates = {}
        for i, name in enumerate(["a", "b"]):
            dag = random_dag(10 + i, seed=50 + i)
            etc = generate_etc(dag, machine, heterogeneity=0.5, seed=i)
            templates[name] = Instance(dag=dag, machine=machine, etc=etc, name=name)
        stream = PoissonArrivals(rate=0.1, jobs=12, seed=3).realize(sorted(templates))
        res = simulate_online(templates, stream, policy="replace")
        assert not res.compiled  # per-link model: no flat lowering
        assert len(res.jobs) == 12
        assert all(s >= 1.0 - 1e-9 for s in res.slowdowns())


class TestValidation:
    def test_templates_must_share_machine(self):
        a = build_templates(num_templates=1, num_tasks=8, num_procs=3, seed=0)
        b = build_templates(num_templates=1, num_tasks=8, num_procs=3, seed=1)
        merged = {"a": a["t0"], "b": b["t0"]}
        with pytest.raises(ConfigurationError):
            simulate_online(merged, PoissonArrivals(rate=1.0, jobs=2))

    def test_non_list_scheduler_rejected(self, templates, stream):
        with pytest.raises(ConfigurationError):
            simulate_online(templates, stream, alg="DLS")

    def test_unknown_policy_rejected(self, templates, stream):
        with pytest.raises(ConfigurationError):
            simulate_online(templates, stream, policy="nope")

    def test_bad_relower_rejected(self, templates, stream):
        with pytest.raises(ConfigurationError):
            simulate_online(templates, stream, relower="sometimes")

    def test_empty_templates_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_online({}, PoissonArrivals(rate=1.0, jobs=1))


class TestResultShape:
    def test_json_shape(self, templates, stream):
        res = simulate_online(templates, stream)
        doc = json.loads(res.to_json())
        assert set(doc) == {"meta", "payload"}
        assert set(doc["payload"]) == {"baselines", "jobs", "metrics"}
        assert doc["meta"]["alg"] == "HEFT"
        assert len(doc["payload"]["jobs"]) == len(stream)
        assert doc["payload"]["metrics"]["jobs"] == float(len(stream))

    def test_online_counter_incremented(self, templates, stream):
        from repro.compiled import reset_schedule_counters, schedule_counters

        reset_schedule_counters()
        simulate_online(templates, stream)
        # one baseline per template + one placement per arrival
        assert schedule_counters()["online_schedules"] >= len(stream)
