"""Full-evaluation report generation.

``generate_report`` runs every registered experiment and assembles a
single Markdown document — the regenerated evaluation section of the
paper, ready to commit next to EXPERIMENTS.md or attach to a CI run.
"""

from __future__ import annotations

import platform as _platform
import sys
import time
from pathlib import Path
from typing import Sequence, Union

from repro._version import __version__
from repro.bench.registry import all_experiment_ids, get_experiment

PathLike = Union[str, Path]


def generate_report(
    quick: bool = True,
    experiment_ids: Sequence[str] | None = None,
) -> str:
    """Run experiments and return one Markdown report.

    ``experiment_ids`` defaults to every registered experiment in order;
    pass a subset to regenerate specific artifacts.
    """
    ids = list(experiment_ids) if experiment_ids is not None else all_experiment_ids()
    protocol = "quick" if quick else "full (paper-scale)"
    lines = [
        "# Regenerated evaluation",
        "",
        f"- library: repro {__version__}",
        f"- python: {sys.version.split()[0]} on {_platform.machine()}",
        f"- protocol: {protocol}",
        f"- experiments: {', '.join(ids)}",
        "",
    ]
    for eid in ids:
        exp = get_experiment(eid)
        t0 = time.perf_counter()
        body = exp.run(quick)
        elapsed = time.perf_counter() - t0
        lines.append(f"## {eid} — {exp.title}")
        lines.append("")
        lines.append(f"*{exp.artifact}, regenerated in {elapsed:.1f}s*")
        lines.append("")
        lines.append("```")
        lines.append(body)
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    path: PathLike,
    quick: bool = True,
    experiment_ids: Sequence[str] | None = None,
) -> Path:
    """Generate and write the report; returns the path."""
    path = Path(path)
    path.write_text(generate_report(quick=quick, experiment_ids=experiment_ids))
    return path
