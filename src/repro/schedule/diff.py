"""Schedule diffing: what actually changed between two schedules?

When two algorithm variants disagree by 2% of makespan, the interesting
question is *which decisions* differed.  :func:`diff_schedules` aligns
two schedules of the same instance and reports moved tasks, reordered
processors and the makespan delta; :func:`diff_report` renders it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ScheduleError
from repro.schedule.schedule import Schedule
from repro.types import ProcId, TaskId


@dataclass(frozen=True)
class TaskMove:
    """One task whose placement differs between the two schedules."""

    task: TaskId
    proc_a: ProcId
    proc_b: ProcId
    start_a: float
    start_b: float

    @property
    def moved_processor(self) -> bool:
        return self.proc_a != self.proc_b

    @property
    def start_delta(self) -> float:
        """Positive = starts later in B."""
        return self.start_b - self.start_a


@dataclass
class ScheduleDiff:
    """Structured difference between schedules A and B."""

    makespan_a: float
    makespan_b: float
    moves: list[TaskMove] = field(default_factory=list)
    duplicates_a: int = 0
    duplicates_b: int = 0

    @property
    def makespan_delta(self) -> float:
        """Positive = B is slower."""
        return self.makespan_b - self.makespan_a

    @property
    def tasks_moved(self) -> int:
        return sum(1 for m in self.moves if m.moved_processor)

    @property
    def identical(self) -> bool:
        return (
            not self.moves
            and abs(self.makespan_delta) < 1e-12
            and self.duplicates_a == self.duplicates_b
        )


def diff_schedules(a: Schedule, b: Schedule) -> ScheduleDiff:
    """Compare two schedules of the same task set.

    Raises :class:`ScheduleError` if the primary task sets differ (they
    are then schedules of different problems, not variants).
    """
    tasks_a = set(a.tasks())
    tasks_b = set(b.tasks())
    if tasks_a != tasks_b:
        missing = tasks_a ^ tasks_b
        raise ScheduleError(
            f"schedules cover different tasks; symmetric difference e.g. "
            f"{sorted(map(str, missing))[:3]}"
        )
    moves: list[TaskMove] = []
    for t in sorted(tasks_a, key=str):
        ea, eb = a.entry(t), b.entry(t)
        if ea.proc != eb.proc or abs(ea.start - eb.start) > 1e-9:
            moves.append(
                TaskMove(task=t, proc_a=ea.proc, proc_b=eb.proc,
                         start_a=ea.start, start_b=eb.start)
            )
    return ScheduleDiff(
        makespan_a=a.makespan,
        makespan_b=b.makespan,
        moves=moves,
        duplicates_a=a.num_duplicates(),
        duplicates_b=b.num_duplicates(),
    )


def diff_report(a: Schedule, b: Schedule, top: int = 10) -> str:
    """Human-readable summary of :func:`diff_schedules`."""
    d = diff_schedules(a, b)
    if d.identical:
        return f"schedules identical (makespan {d.makespan_a:g})"
    lines = [
        f"A: {a.name!r} makespan {d.makespan_a:g} ({d.duplicates_a} dups)",
        f"B: {b.name!r} makespan {d.makespan_b:g} ({d.duplicates_b} dups)",
        f"delta: {d.makespan_delta:+g} "
        f"({100 * d.makespan_delta / d.makespan_a:+.2f}%)"
        if d.makespan_a > 0 else "delta: n/a",
        f"placements differing: {len(d.moves)} "
        f"(processor moves: {d.tasks_moved})",
    ]
    biggest = sorted(d.moves, key=lambda m: -abs(m.start_delta))[:top]
    for m in biggest:
        arrow = f"P{m.proc_a}->P{m.proc_b}" if m.moved_processor else f"P{m.proc_a}"
        lines.append(
            f"  {str(m.task):<16} {arrow:<10} start {m.start_a:g} -> {m.start_b:g} "
            f"({m.start_delta:+g})"
        )
    if len(d.moves) > top:
        lines.append(f"  ... and {len(d.moves) - top} more")
    return "\n".join(lines)
