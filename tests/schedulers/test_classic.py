"""Tests for the classic baselines: HCPT, PETS, DLS, ETF, MCP, HLFET."""

import pytest

from repro.dag.generators import fork_join_dag, laplace_dag, random_dag
from repro.instance import homogeneous_instance, make_instance
from repro.schedule.metrics import slr
from repro.schedule.validation import validate
from repro.schedulers.dls import DLS
from repro.schedulers.etf import ETF
from repro.schedulers.hcpt import HCPT
from repro.schedulers.hlfet import HLFET
from repro.schedulers.mcp import MCP
from repro.schedulers.pets import PETS
from repro.schedulers.baselines import RandomScheduler

ALL = [HCPT, PETS, DLS, ETF, MCP, HLFET]


@pytest.fixture(params=ALL, ids=lambda c: c.__name__)
def scheduler(request):
    return request.param()


class TestFeasibilityEverywhere:
    def test_topcuoglu(self, scheduler, topcuoglu_instance):
        s = scheduler.schedule(topcuoglu_instance)
        validate(s, topcuoglu_instance)
        # Sanity corridor: no classic heuristic should be worse than 2x
        # HEFT's 80 on this well-studied instance.
        assert s.makespan <= 160.0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_instances(self, scheduler, seed):
        dag = random_dag(50, seed=seed)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=seed)
        s = scheduler.schedule(inst)
        validate(s, inst)
        assert len(s) == 50

    def test_homogeneous(self, scheduler, diamond_dag):
        inst = homogeneous_instance(diamond_dag, num_procs=2)
        validate(scheduler.schedule(inst), inst)

    def test_single_task(self, scheduler):
        from repro.dag.graph import TaskDAG
        from repro.dag.task import Task

        dag = TaskDAG()
        dag.add_task(Task(0, cost=3.0))
        inst = homogeneous_instance(dag, num_procs=2)
        s = scheduler.schedule(inst)
        assert s.makespan == pytest.approx(3.0)

    def test_deterministic(self, scheduler, topcuoglu_instance):
        a = scheduler.schedule(topcuoglu_instance)
        b = scheduler.schedule(topcuoglu_instance)
        assert a.assignment() == b.assignment()

    def test_beats_random_on_average(self, scheduler):
        wins = 0
        for seed in range(6):
            dag = random_dag(60, seed=seed)
            inst = make_instance(dag, num_procs=4, seed=seed)
            heur = scheduler.schedule(inst).makespan
            rand = RandomScheduler(seed=seed).schedule(inst).makespan
            wins += heur <= rand
        assert wins >= 4  # must beat random placement most of the time


class TestHcptSpecifics:
    def test_parents_before_children_in_listing(self, topcuoglu_instance):
        order = HCPT().priority_order(topcuoglu_instance)
        pos = {t: i for i, t in enumerate(order)}
        for u, v in topcuoglu_instance.dag.edges():
            assert pos[u] < pos[v]

    def test_listing_complete(self, topcuoglu_instance):
        order = HCPT().priority_order(topcuoglu_instance)
        assert sorted(order) == sorted(topcuoglu_instance.dag.tasks())

    def test_cp_head_listed_first(self, topcuoglu_instance):
        # The entry critical task must lead the listing.
        assert HCPT().priority_order(topcuoglu_instance)[0] == 1


class TestPetsSpecifics:
    def test_level_sorted(self, topcuoglu_instance):
        from repro.dag.analysis import graph_levels

        order = PETS().priority_order(topcuoglu_instance)
        levels = graph_levels(topcuoglu_instance.dag)
        seq = [levels[t] for t in order]
        assert seq == sorted(seq)


class TestMcpSpecifics:
    def test_order_ascending_alap(self, topcuoglu_instance):
        from repro.schedulers.ranking import alap_times

        order = MCP().priority_order(topcuoglu_instance)
        alap = alap_times(topcuoglu_instance)
        # Along any edge, parent must precede child (topological check is
        # the contract; plain ALAP ordering can tie).
        pos = {t: i for i, t in enumerate(order)}
        for u, v in topcuoglu_instance.dag.edges():
            assert pos[u] < pos[v]
        assert order[0] == min(alap, key=lambda t: alap[t])

    def test_zero_cost_chain_survives(self):
        # Regression guard: zero-cost, zero-data chains can tie ALAPs.
        from repro.dag.graph import TaskDAG
        from repro.dag.task import Task

        dag = TaskDAG()
        for tid in ("a", "b", "c"):
            dag.add_task(Task(tid, cost=0.0))
        dag.add_task(Task("w", cost=5.0))
        dag.add_edge("a", "b", data=0.0)
        dag.add_edge("b", "c", data=0.0)
        dag.add_edge("a", "w", data=0.0)
        inst = homogeneous_instance(dag, num_procs=2)
        s = MCP().schedule(inst)
        validate(s, inst)


class TestDlsEtfDynamics:
    def test_dls_prefers_fast_processor(self, topcuoglu_instance):
        s = DLS().schedule(topcuoglu_instance)
        # Task 1 should land on its fastest processor (delta term).
        assert s.proc_of(1) == 2

    def test_etf_no_insertion_semantics(self, topcuoglu_instance):
        # ETF appends only: on each processor starts are >= previous ends
        # trivially; also no task starts before its ready time (validate
        # covers that) — here check it used append order = start order.
        s = ETF().schedule(topcuoglu_instance)
        for p in topcuoglu_instance.machine.proc_ids():
            entries = s.proc_entries(p)
            for prev, nxt in zip(entries, entries[1:]):
                assert nxt.start >= prev.end - 1e-9


class TestRelativeQuality:
    def test_insertion_heuristics_beat_hlfet_on_laplace(self):
        # Wavefront graphs reward insertion; HLFET (no insertion) should
        # not dominate MCP here on average.
        from repro.schedulers.heft import HEFT

        dag = laplace_dag(6)
        better = 0
        for seed in range(5):
            inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=seed)
            if HEFT().schedule(inst).makespan <= HLFET().schedule(inst).makespan + 1e-9:
                better += 1
        assert better >= 3

    def test_all_slr_reasonable_on_forkjoin(self):
        dag = fork_join_dag(6, stages=2, chain_length=2)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=3)
        for cls in ALL:
            s = cls().schedule(inst)
            assert slr(s, inst) < 10.0
