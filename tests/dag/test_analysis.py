"""Tests for repro.dag.analysis."""

import pytest

from repro.dag.analysis import (
    bottom_levels,
    critical_path,
    critical_path_length,
    graph_levels,
    ideal_lower_bound,
    map_costs,
    parallelism_profile,
    static_levels,
    top_levels,
)
from repro.dag.graph import TaskDAG
from repro.dag.task import Task


@pytest.fixture
def dag(diamond_dag) -> TaskDAG:
    return diamond_dag  # a(2) -> b(4)[3], a -> c(3)[1], b -> d(2)[2], c -> d[2]


class TestTopLevels:
    def test_entry_is_zero(self, dag):
        assert top_levels(dag)["a"] == 0.0

    def test_with_comm(self, dag):
        tl = top_levels(dag)
        assert tl["b"] == pytest.approx(2 + 3)
        assert tl["c"] == pytest.approx(2 + 1)
        # d: max(tl_b + 4 + 2, tl_c + 3 + 2) = max(11, 8) = 11
        assert tl["d"] == pytest.approx(11)

    def test_without_comm(self, dag):
        tl = top_levels(dag, include_comm=False)
        assert tl["d"] == pytest.approx(6)  # a + b


class TestBottomLevels:
    def test_exit_is_own_cost(self, dag):
        assert bottom_levels(dag)["d"] == 2.0

    def test_with_comm(self, dag):
        bl = bottom_levels(dag)
        assert bl["b"] == pytest.approx(4 + 2 + 2)
        assert bl["c"] == pytest.approx(3 + 2 + 2)
        assert bl["a"] == pytest.approx(2 + 3 + 8)  # via b

    def test_static_levels_ignore_comm(self, dag):
        sl = static_levels(dag)
        assert sl["a"] == pytest.approx(2 + 4 + 2)


class TestCriticalPath:
    def test_length_with_comm(self, dag):
        assert critical_path_length(dag) == pytest.approx(13)

    def test_length_without_comm(self, dag):
        assert critical_path_length(dag, include_comm=False) == pytest.approx(8)

    def test_path_nodes(self, dag):
        assert critical_path(dag) == ["a", "b", "d"]

    def test_path_is_a_real_path(self, dag):
        path = critical_path(dag)
        for u, v in zip(path, path[1:]):
            assert dag.has_edge(u, v)

    def test_empty_graph(self):
        d = TaskDAG()
        assert critical_path(d) == []
        assert critical_path_length(d) == 0.0

    def test_single_task(self):
        d = TaskDAG()
        d.add_task(Task("x", cost=5.0))
        assert critical_path(d) == ["x"]
        assert critical_path_length(d) == 5.0

    def test_path_length_consistency(self, dag):
        path = critical_path(dag)
        length = sum(dag.cost(t) for t in path) + sum(
            dag.data(u, v) for u, v in zip(path, path[1:])
        )
        assert length == pytest.approx(critical_path_length(dag))


class TestLevelsAndProfile:
    def test_graph_levels(self, dag):
        lv = graph_levels(dag)
        assert lv == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_parallelism_profile(self, dag):
        assert parallelism_profile(dag) == [1, 2, 1]

    def test_profile_sums_to_task_count(self, dag):
        assert sum(parallelism_profile(dag)) == dag.num_tasks

    def test_empty_profile(self):
        assert parallelism_profile(TaskDAG()) == []


class TestIdealLowerBound:
    def test_cp_dominates_when_few_procs_irrelevant(self, dag):
        # CP (no comm) = 8; work/q = 11/4 = 2.75
        assert ideal_lower_bound(dag, 4) == pytest.approx(8)

    def test_work_dominates_single_proc(self, dag):
        assert ideal_lower_bound(dag, 1) == pytest.approx(11)

    def test_rejects_zero_procs(self, dag):
        with pytest.raises(ValueError):
            ideal_lower_bound(dag, 0)

    def test_empty(self):
        assert ideal_lower_bound(TaskDAG(), 4) == 0.0


class TestMapCosts:
    def test_doubling(self, dag):
        doubled = map_costs(dag, lambda t, c: 2 * c)
        assert doubled.cost("a") == 4.0
        assert dag.cost("a") == 2.0  # original untouched
        assert doubled.data("a", "b") == dag.data("a", "b")

    def test_scaling_scales_cp(self, dag):
        doubled = map_costs(dag, lambda t, c: 2 * c)
        assert critical_path_length(doubled, include_comm=False) == pytest.approx(
            2 * critical_path_length(dag, include_comm=False)
        )
