"""Multi-DAG composition: schedule several applications on one machine.

Two composition modes:

* :func:`disjoint_union` — applications share the machine concurrently
  (the multi-workflow scheduling setting); task ids are namespaced by
  application,
* :func:`sequential_chain` — applications run back-to-back (each
  application's exits feed the next one's entries with zero data).

:func:`per_dag_spans` recovers each application's own finish time from
a composite schedule, and :func:`unfairness` is the standard slowdown-
spread metric of the multi-workflow literature.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import GraphError
from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.types import TaskId


def _namespaced(tag: str, dag: TaskDAG, out: TaskDAG) -> dict[TaskId, tuple]:
    mapping: dict[TaskId, tuple] = {}
    for t in dag.task_objects():
        new_id = (tag, t.id)
        mapping[t.id] = new_id
        out.add_task(Task(id=new_id, cost=t.cost, name=f"{tag}:{t.name}",
                          attrs=dict(t.attrs)))
    for u, v in dag.edges():
        out.add_edge(mapping[u], mapping[v], data=dag.data(u, v))
    return mapping


def disjoint_union(dags: Mapping[str, TaskDAG] | Sequence[TaskDAG], name: str = "union") -> TaskDAG:
    """Concurrent composition: all applications, no cross edges.

    Task ids become ``(app_tag, original_id)``; tags are the mapping
    keys or ``dag.name`` (made unique) for sequences.
    """
    items = _tagged_items(dags)
    out = TaskDAG(name)
    for tag, dag in items:
        _namespaced(tag, dag, out)
    return out


def sequential_chain(dags: Mapping[str, TaskDAG] | Sequence[TaskDAG], name: str = "chain") -> TaskDAG:
    """Back-to-back composition: app k's exits gate app k+1's entries."""
    items = _tagged_items(dags)
    out = TaskDAG(name)
    prev_exits: list = []
    for tag, dag in items:
        mapping = _namespaced(tag, dag, out)
        entries = [mapping[t] for t in dag.entry_tasks()]
        for x in prev_exits:
            for e in entries:
                out.add_edge(x, e, data=0.0)
        prev_exits = [mapping[t] for t in dag.exit_tasks()]
    return out


def _tagged_items(dags) -> list[tuple[str, TaskDAG]]:
    if isinstance(dags, Mapping):
        items = list(dags.items())
    else:
        items = []
        seen: dict[str, int] = {}
        for dag in dags:
            tag = dag.name
            if tag in seen:
                seen[tag] += 1
                tag = f"{tag}#{seen[dag.name]}"
            else:
                seen[tag] = 0
            items.append((tag, dag))
    if not items:
        raise GraphError("no DAGs to compose")
    if len({tag for tag, _ in items}) != len(items):
        raise GraphError("duplicate application tags")
    return items


def per_dag_spans(schedule: Schedule, composite: TaskDAG) -> dict[str, float]:
    """Finish time of each application inside a composite schedule."""
    spans: dict[str, float] = {}
    for t in composite.tasks():
        if not (isinstance(t, tuple) and len(t) == 2):
            raise GraphError(f"task {t!r} is not namespaced (tag, id)")
        tag = t[0]
        spans[tag] = max(spans.get(tag, 0.0), schedule.end_of(t))
    return spans


def unfairness(
    schedule: Schedule,
    composite: TaskDAG,
    solo_spans: Mapping[str, float],
) -> float:
    """Spread of per-application slowdowns (0 = perfectly fair).

    Slowdown of app ``a`` is ``shared_finish(a) / solo_makespan(a)``;
    unfairness is the mean absolute deviation of slowdowns from their
    mean — the standard multi-workflow fairness statistic.
    """
    shared = per_dag_spans(schedule, composite)
    missing = set(shared) - set(solo_spans)
    if missing:
        raise GraphError(f"solo spans missing for: {sorted(missing)}")
    slowdowns = np.array([shared[a] / solo_spans[a] for a in sorted(shared)])
    if np.any(~np.isfinite(slowdowns)):
        raise GraphError("solo spans must be positive and finite")
    return float(np.abs(slowdowns - slowdowns.mean()).mean())


def multi_instance_spans(
    scheduler,
    dags: Mapping[str, TaskDAG],
    make_shared_instance,
) -> tuple[Instance, Schedule, dict[str, float]]:
    """Convenience: schedule the union and return per-app spans.

    ``make_shared_instance(composite_dag) -> Instance`` lets the caller
    control the machine/ETC; the same callable can then be reused for
    the solo runs needed by :func:`unfairness`.
    """
    composite = disjoint_union(dags)
    instance = make_shared_instance(composite)
    schedule = scheduler.schedule(instance)
    return instance, schedule, per_dag_spans(schedule, composite)
