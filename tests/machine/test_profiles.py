"""Tests for the named machine profiles."""

import pytest

from repro.dag.generators import random_dag
from repro.exceptions import MachineError
from repro.machine.profiles import accelerated_node, compute_grid, workstation_cluster
from repro.schedule.validation import validate
from repro.schedulers.heft import HEFT
from repro.core import ImprovedScheduler
from repro.instance import Instance
from repro.machine.etc import etc_from_speeds


class TestWorkstationCluster:
    def test_shape(self):
        m = workstation_cluster(num_nodes=6, seed=1)
        assert m.num_procs == 6

    def test_speeds_from_tiers(self):
        m = workstation_cluster(num_nodes=20, generations=3, seed=2)
        tiers = {1.0, 1.5, 2.25}
        assert {m.speed(p) for p in m.proc_ids()} <= tiers

    def test_deterministic(self):
        a = workstation_cluster(num_nodes=5, seed=3)
        b = workstation_cluster(num_nodes=5, seed=3)
        assert [a.speed(p) for p in a.proc_ids()] == [b.speed(p) for p in b.proc_ids()]

    def test_schedulable(self):
        dag = random_dag(30, seed=4)
        m = workstation_cluster(num_nodes=4, seed=4)
        inst = Instance(dag, m, etc_from_speeds(dag, m))
        validate(HEFT().schedule(inst), inst)

    def test_bad_params(self):
        with pytest.raises(MachineError):
            workstation_cluster(num_nodes=0)
        with pytest.raises(MachineError):
            workstation_cluster(generations=0)


class TestAcceleratedNode:
    @pytest.fixture
    def instance(self):
        dag = random_dag(40, seed=5)
        return accelerated_node(dag, num_cpus=3, num_accels=2, seed=5)

    def test_processor_count(self, instance):
        assert instance.num_procs == 5

    def test_etc_inconsistent(self, instance):
        # Some tasks faster on accelerators, some slower: the matrix
        # must not be consistent.
        assert not instance.etc.is_consistent()

    def test_accelerable_tasks_exist(self, instance):
        accel_proc = instance.machine.proc_ids()[-1]
        cpu_proc = instance.machine.proc_ids()[0]
        faster = sum(
            instance.exec_time(t, accel_proc) < instance.exec_time(t, cpu_proc)
            for t in instance.dag.tasks()
        )
        slower = sum(
            instance.exec_time(t, accel_proc) > instance.exec_time(t, cpu_proc)
            for t in instance.dag.tasks()
        )
        assert faster > 0 and slower > 0

    def test_cpu_links_faster_than_pcie(self, instance):
        m = instance.machine
        assert m.comm_time(10.0, 0, 1) < m.comm_time(10.0, 0, 4)

    def test_schedulers_exploit_accelerators(self, instance):
        s = ImprovedScheduler().schedule(instance)
        validate(s, instance)
        accel_ids = set(instance.machine.proc_ids()[3:])
        used = {p.proc for p in s.all_placements()}
        assert used & accel_ids  # the accelerators attract work

    def test_bad_params(self):
        dag = random_dag(10, seed=6)
        with pytest.raises(MachineError):
            accelerated_node(dag, num_cpus=0)
        with pytest.raises(MachineError):
            accelerated_node(dag, accel_fraction=1.5)


class TestComputeGrid:
    def test_shape(self):
        m = compute_grid(clusters=3, nodes_per_cluster=4, seed=7)
        assert m.num_procs == 12

    def test_intra_cheaper_than_inter(self):
        m = compute_grid(clusters=2, nodes_per_cluster=2, seed=8)
        intra = m.comm_time(10.0, 0, 1)
        inter = m.comm_time(10.0, 0, 2)
        assert intra < inter

    def test_cluster_speeds_uniform_within(self):
        m = compute_grid(clusters=2, nodes_per_cluster=3, seed=9)
        assert m.speed(0) == m.speed(1) == m.speed(2)
        assert m.speed(3) == m.speed(4) == m.speed(5)

    def test_schedulable(self):
        dag = random_dag(25, seed=10)
        m = compute_grid(clusters=2, nodes_per_cluster=2, seed=10)
        inst = Instance(dag, m, etc_from_speeds(dag, m))
        validate(HEFT().schedule(inst), inst)

    def test_bad_params(self):
        with pytest.raises(MachineError):
            compute_grid(clusters=0)
