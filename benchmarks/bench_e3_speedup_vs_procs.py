"""E3 — Average speedup vs processor count.

Expected shape: speedup grows with the processor count (with
diminishing returns past the graph's width); the improved scheduler's
speedup is at least HEFT's everywhere.
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e3_data
from repro.schedulers.registry import get_scheduler

from conftest import series_mean


def test_e3_shape(quick):
    res = e3_data(quick)
    print("\n" + res.table("E3: average speedup vs processors"))
    # Speedup is higher-is-better: IMP >= HEFT on average.
    assert series_mean(res, "IMP") >= series_mean(res, "HEFT") - 1e-9
    # More processors help every algorithm between the extremes.
    for name, vals in res.series.items():
        assert vals[-1] > vals[0], name
    # Speedups stay within physical limits.  Note the bound is NOT q:
    # heterogeneous speedup is measured against the best *single*
    # processor, while a parallel schedule runs each task on its own
    # best processor — with beta=0.5 the per-task ETC spread is
    # [0.75w, 1.25w], so the cap is q * 1.25/0.75.
    for i, q in enumerate(res.x_values):
        for name, vals in res.series.items():
            assert 0 < vals[i] <= q * (1.25 / 0.75) + 1e-6, (name, q)


def test_e3_benchmark_many_procs(benchmark):
    rng = np.random.default_rng(203)
    inst = W.random_instance(rng, num_tasks=100, num_procs=16)
    result = benchmark(get_scheduler("IMP").schedule, inst)
    assert result.makespan > 0
