"""Tests for the communication-cost models."""

import pytest

from repro.exceptions import MachineError
from repro.machine.comm import (
    LinkCommunication,
    UniformCommunication,
    ZeroCommunication,
)


class TestZeroCommunication:
    def test_always_zero(self):
        c = ZeroCommunication()
        assert c.time(100.0, 0, 1) == 0.0
        assert c.average_time(100.0) == 0.0

    def test_rejects_negative_data(self):
        with pytest.raises(MachineError):
            ZeroCommunication().time(-1.0, 0, 1)


class TestUniformCommunication:
    def test_formula(self):
        c = UniformCommunication(latency=2.0, bandwidth=4.0)
        assert c.time(8.0, 0, 1) == pytest.approx(2.0 + 2.0)

    def test_local_free(self):
        c = UniformCommunication(latency=2.0, bandwidth=4.0)
        assert c.time(8.0, 1, 1) == 0.0

    def test_average_includes_latency(self):
        c = UniformCommunication(latency=3.0, bandwidth=1.0)
        assert c.average_time(0.0) == 3.0

    def test_invalid_params(self):
        with pytest.raises(MachineError):
            UniformCommunication(latency=-1.0)
        with pytest.raises(MachineError):
            UniformCommunication(bandwidth=0.0)

    def test_zero_data(self):
        c = UniformCommunication(latency=0.0, bandwidth=1.0)
        assert c.time(0.0, 0, 1) == 0.0


class TestLinkCommunication:
    @pytest.fixture
    def links(self) -> LinkCommunication:
        ids = [0, 1]
        lat = {0: {1: 1.0}, 1: {0: 3.0}}
        bw = {0: {1: 2.0}, 1: {0: 4.0}}
        return LinkCommunication(ids, lat, bw)

    def test_directional(self, links):
        assert links.time(8.0, 0, 1) == pytest.approx(1.0 + 4.0)
        assert links.time(8.0, 1, 0) == pytest.approx(3.0 + 2.0)

    def test_local_free(self, links):
        assert links.time(8.0, 0, 0) == 0.0

    def test_average(self, links):
        # avg latency = 2.0; avg 1/bw = (0.5 + 0.25)/2 = 0.375
        assert links.average_time(8.0) == pytest.approx(2.0 + 3.0)

    def test_unknown_link(self, links):
        with pytest.raises(MachineError):
            links.time(1.0, 0, 9)

    def test_missing_entry_rejected(self):
        with pytest.raises(MachineError):
            LinkCommunication([0, 1], {0: {}, 1: {0: 1.0}}, {0: {1: 1.0}, 1: {0: 1.0}})

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(MachineError):
            LinkCommunication([0, 1], {0: {1: 0.0}, 1: {0: 0.0}},
                              {0: {1: 0.0}, 1: {0: 1.0}})

    def test_duplicate_ids_rejected(self):
        with pytest.raises(MachineError):
            LinkCommunication([0, 0], {}, {})

    def test_single_proc_trivial(self):
        c = LinkCommunication([0], {0: {}}, {0: {}})
        assert c.average_time(5.0) == 0.0
