"""Cost annotation helpers shared by the generators.

The evaluation protocol controls two knobs on every graph:

* the average task cost (irrelevant to relative metrics, kept for
  realism), and
* the **CCR** (communication-to-computation ratio): total edge data
  divided by total task cost.  :func:`scale_ccr` rescales edge data so a
  graph hits a target CCR exactly, which is how the CCR sweeps (E2) are
  produced without changing graph structure.
"""

from __future__ import annotations

from repro.dag.graph import TaskDAG
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


def randomize_costs(
    dag: TaskDAG,
    avg_cost: float = 10.0,
    avg_data: float | None = None,
    seed: SeedLike = None,
) -> TaskDAG:
    """Return a copy of ``dag`` with uniformly random cost annotations.

    Task costs are drawn from ``U(0, 2*avg_cost]`` (the TPDS-2002
    protocol; the open lower end avoids zero-cost tasks) and edge data
    from ``U(0, 2*avg_data]`` with ``avg_data`` defaulting to
    ``avg_cost`` (CCR about 1 before any exact rescale).
    """
    if avg_cost <= 0:
        raise ConfigurationError(f"avg_cost must be > 0, got {avg_cost}")
    if avg_data is None:
        avg_data = avg_cost
    if avg_data < 0:
        raise ConfigurationError(f"avg_data must be >= 0, got {avg_data}")
    rng = as_generator(seed)
    clone = dag.copy()
    for t in clone.tasks():
        clone.set_cost(t, float(rng.uniform(1e-6, 2.0 * avg_cost)))
    for u, v in clone.edges():
        clone.set_data(u, v, float(rng.uniform(0.0, 2.0 * avg_data)))
    return clone


def scale_ccr(dag: TaskDAG, ccr: float) -> TaskDAG:
    """Return a copy whose total data / total cost equals ``ccr`` exactly.

    Keeps the *relative* sizes of edges; a graph whose edges all carry
    zero data gets uniform data instead (there is nothing to scale).
    Requires a graph with positive total cost and at least one edge for
    a non-zero target.
    """
    if ccr < 0:
        raise ConfigurationError(f"ccr must be >= 0, got {ccr}")
    clone = dag.copy()
    total_cost = clone.total_cost()
    if total_cost <= 0:
        raise ConfigurationError("cannot scale CCR of a graph with zero total cost")
    edges = list(clone.edges())
    if ccr == 0:
        for u, v in edges:
            clone.set_data(u, v, 0.0)
        return clone
    if not edges:
        raise ConfigurationError("cannot reach a non-zero CCR without edges")
    total_data = clone.total_data()
    target = ccr * total_cost
    if total_data <= 0:
        uniform = target / len(edges)
        for u, v in edges:
            clone.set_data(u, v, uniform)
        return clone
    factor = target / total_data
    for u, v in edges:
        clone.set_data(u, v, clone.data(u, v) * factor)
    return clone
