"""The experiment registry: one entry per reproduced figure/table.

Every experiment of the evaluation (DESIGN.md §4) is split into a
``eN_data(quick)`` function producing structured results and a report
formatter; the registry maps experiment ids to the formatted reports.
The pytest benchmark modules in ``benchmarks/`` assert on the structured
data and the CLI prints the reports — both dispatch here, so there is
exactly one implementation of each experiment's protocol.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.bench import workloads as W
from repro.bench.runner import SweepResult, run_instances, run_sweep
from repro.core import ImprovedConfig, ImprovedScheduler
from repro.exceptions import ExperimentError
from repro.instance import Instance
from repro.schedule.metrics import pairwise_comparison, slr
from repro.schedule.validation import validate
from repro.schedulers.optimal import BranchAndBoundScheduler
from repro.schedulers.registry import get_scheduler
from repro.sim import MultiplicativeNoise, execute
from repro.utils.rng import spawn_children
from repro.utils.tables import format_series, format_table


@dataclass(frozen=True)
class Experiment:
    """One reproduced evaluation artifact."""

    id: str
    title: str
    artifact: str  # "figure" or "table"
    run: Callable[[bool], str]  # quick -> report text


_EXPERIMENTS: dict[str, Experiment] = {}


def _register(id: str, title: str, artifact: str):
    def deco(fn: Callable[[bool], str]) -> Callable[[bool], str]:
        _EXPERIMENTS[id] = Experiment(id=id, title=title, artifact=artifact, run=fn)
        return fn

    return deco


def get_experiment(id: str) -> Experiment:
    """Look up an experiment by id (e.g. ``"E2"``)."""
    try:
        return _EXPERIMENTS[id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {id!r}; known: {', '.join(sorted(_EXPERIMENTS))}"
        ) from None


def all_experiment_ids() -> list[str]:
    """Registered experiment ids in numeric order."""
    return sorted(_EXPERIMENTS, key=lambda e: int(e.lstrip("E")))


def run_experiment(id: str, quick: bool = True) -> str:
    """Run one experiment and return its report text."""
    return get_experiment(id).run(quick)


# ----------------------------------------------------------------------
# E1 - E5: random-DAG parameter sweeps
# ----------------------------------------------------------------------
def e1_data(quick: bool = True, workers: int = 1) -> SweepResult:
    return run_sweep(
        W.COMPARED, "tasks", W.sizes(quick),
        W.SweepFactory("random", "num_tasks"),
        reps=W.reps(quick), metric="slr", seed=101, workers=workers,
    )


@_register("E1", "Average SLR vs DAG size (random graphs)", "figure")
def e1(quick: bool = True) -> str:
    return e1_data(quick).table("E1: average SLR vs DAG size (q=8, CCR=1, beta=0.5)")


def e2_data(quick: bool = True, workers: int = 1) -> SweepResult:
    return run_sweep(
        W.COMPARED, "ccr", W.ccrs(quick),
        W.SweepFactory("random", "ccr"),
        reps=W.reps(quick), metric="slr", seed=102, workers=workers,
    )


@_register("E2", "Average SLR vs CCR (random graphs)", "figure")
def e2(quick: bool = True) -> str:
    return e2_data(quick).table("E2: average SLR vs CCR (n=100, q=8, beta=0.5)")


def e3_data(quick: bool = True, workers: int = 1) -> SweepResult:
    return run_sweep(
        W.COMPARED, "procs", W.proc_counts(quick),
        W.SweepFactory("random", "num_procs"),
        reps=W.reps(quick), metric="speedup", seed=103, workers=workers,
    )


@_register("E3", "Average speedup vs processor count (random graphs)", "figure")
def e3(quick: bool = True) -> str:
    return e3_data(quick).table("E3: average speedup vs processor count (n=100, CCR=1)")


def e4_data(quick: bool = True, workers: int = 1) -> SweepResult:
    return run_sweep(
        W.COMPARED, "beta", W.heterogeneities(quick),
        W.SweepFactory("random", "heterogeneity"),
        reps=W.reps(quick), metric="slr", seed=104, workers=workers,
    )


@_register("E4", "Average SLR vs heterogeneity factor beta", "figure")
def e4(quick: bool = True) -> str:
    return e4_data(quick).table("E4: average SLR vs heterogeneity (n=100, q=8, CCR=1)")


def e5_data(quick: bool = True, workers: int = 1) -> SweepResult:
    return run_sweep(
        W.COMPARED, "alpha", W.shapes(quick),
        W.SweepFactory("random", "shape"),
        reps=W.reps(quick), metric="slr", seed=105, workers=workers,
    )


@_register("E5", "Average SLR vs graph shape alpha", "figure")
def e5(quick: bool = True) -> str:
    return e5_data(quick).table("E5: average SLR vs shape alpha (n=100, q=8, CCR=1)")


# ----------------------------------------------------------------------
# E6 - E8: application graphs
# ----------------------------------------------------------------------
def e6_data(quick: bool = True, workers: int = 1) -> SweepResult:
    return run_sweep(
        W.COMPARED, "matrix", W.matrix_sizes(quick),
        W.SweepFactory("gaussian", "matrix_size"),
        reps=W.reps(quick), metric="slr", seed=106, workers=workers,
    )


@_register("E6", "Gaussian elimination: SLR vs matrix size", "figure")
def e6(quick: bool = True) -> str:
    return e6_data(quick).table("E6: Gaussian elimination, average SLR vs matrix size (q=8)")


def e7_data(quick: bool = True, metric: str = "slr", workers: int = 1) -> SweepResult:
    return run_sweep(
        W.COMPARED, "points", W.fft_points(quick),
        W.SweepFactory("fft", "points"),
        reps=W.reps(quick), metric=metric, seed=107, workers=workers,
    )


@_register("E7", "FFT: SLR and speedup vs input points", "figure")
def e7(quick: bool = True) -> str:
    return (
        e7_data(quick, "slr").table("E7a: FFT, average SLR vs input points (q=8)")
        + "\n\n"
        + e7_data(quick, "speedup").table("E7b: FFT, average speedup vs input points (q=8)")
    )


def e8_data(quick: bool = True, workers: int = 1) -> SweepResult:
    return run_sweep(
        W.COMPARED, "grid", W.grid_sizes(quick),
        W.SweepFactory("laplace", "grid_size"),
        reps=W.reps(quick), metric="slr", seed=108, workers=workers,
    )


@_register("E8", "Laplace wavefront: SLR vs grid size", "figure")
def e8(quick: bool = True) -> str:
    return e8_data(quick).table("E8: Laplace wavefront, average SLR vs grid size (q=8)")


# ----------------------------------------------------------------------
# E9: pairwise better/equal/worse table
# ----------------------------------------------------------------------
def _mixed_instances(quick: bool, seed: int = 109) -> list[Instance]:
    count = 30 if quick else 500
    streams = spawn_children(seed, count)
    instances = []
    for i, rng in enumerate(streams):
        n = [40, 80, 120][i % 3]
        ccr = [0.5, 1.0, 5.0][(i // 3) % 3]
        instances.append(W.random_instance(rng, num_tasks=n, ccr=ccr))
    return instances


def e9_data(quick: bool = True) -> dict[tuple[str, str], tuple[float, float, float]]:
    instances = _mixed_instances(quick)
    results = run_instances(W.COMPARED_WIDE, instances)
    return pairwise_comparison(results)


@_register("E9", "Pairwise better/equal/worse percentages", "table")
def e9(quick: bool = True) -> str:
    pairs = e9_data(quick)
    contribution = "IMP"
    rows = []
    for other in W.COMPARED_WIDE:
        if other == contribution:
            continue
        better, equal, worse = pairs[(contribution, other)]
        rows.append([other, f"{better:.1f}%", f"{equal:.1f}%", f"{worse:.1f}%"])
    count = 30 if quick else 500
    return format_table(
        ["vs", "IMP better", "equal", "IMP worse"],
        rows,
        title=f"E9: pairwise makespan comparison over {count} random instances",
    )


# ----------------------------------------------------------------------
# E10: scheduling-time comparison
# ----------------------------------------------------------------------
def e10_data(quick: bool = True) -> tuple[list[int], dict[str, list[float]]]:
    xs = [50, 100] if quick else [100, 200, 400, 800]
    seconds: dict[str, list[float]] = {name: [] for name in W.COMPARED}
    for n in xs:
        streams = spawn_children(110 + n, 3 if quick else 5)
        instances = [W.random_instance(rng, num_tasks=n) for rng in streams]
        for name in W.COMPARED:
            scheduler = get_scheduler(name)
            t0 = time.perf_counter()
            for inst in instances:
                scheduler.schedule(inst)
            seconds[name].append((time.perf_counter() - t0) / len(instances))
    return xs, seconds


@_register("E10", "Scheduler running time vs DAG size", "table")
def e10(quick: bool = True) -> str:
    xs, seconds = e10_data(quick)
    rows = [[n, *(seconds[name][i] for name in W.COMPARED)] for i, n in enumerate(xs)]
    return format_table(
        ["tasks", *W.COMPARED],
        rows,
        title="E10: mean scheduling time per instance (seconds, q=8)",
    )


# ----------------------------------------------------------------------
# E11: homogeneous systems
# ----------------------------------------------------------------------
def e11_data(quick: bool = True, workers: int = 1) -> SweepResult:
    return run_sweep(
        W.COMPARED_HOMOGENEOUS, "tasks", W.sizes(quick),
        W.SweepFactory("homogeneous", "num_tasks"),
        reps=W.reps(quick), metric="slr", seed=111, workers=workers,
    )


@_register("E11", "Homogeneous system: SLR vs DAG size", "figure")
def e11(quick: bool = True) -> str:
    return e11_data(quick).table(
        "E11: homogeneous machine, average SLR vs DAG size (q=8, CCR=1)"
    )


# ----------------------------------------------------------------------
# E12: ablation of the four improvements
# ----------------------------------------------------------------------
def ablation_configs() -> dict[str, ImprovedConfig]:
    """The ablation grid of E12 (public so tests can reuse it)."""
    return {
        "full": ImprovedConfig(),
        "no-rank-search": ImprovedConfig(rank_variants=("mean",)),
        "no-lookahead": ImprovedConfig(lookahead=False),
        "no-duplication": ImprovedConfig(duplication=False),
        "no-refinement": ImprovedConfig(refinement=False),
        "none (=HEFT)": ImprovedConfig.baseline_heft(),
    }


def e12_data(quick: bool = True) -> dict[str, float]:
    """Mean SLR per ablation configuration."""
    count = 20 if quick else 200
    streams = spawn_children(112, count)
    instances = [W.random_instance(rng, num_tasks=80) for rng in streams]
    out: dict[str, float] = {}
    for label, config in ablation_configs().items():
        scheduler = ImprovedScheduler(config)
        slrs = []
        for inst in instances:
            schedule = scheduler.schedule(inst)
            validate(schedule, inst)
            slrs.append(slr(schedule, inst))
        out[label] = float(np.mean(slrs))
    return out


@_register("E12", "Ablation of the four improvements", "table")
def e12(quick: bool = True) -> str:
    means = e12_data(quick)
    base = means["none (=HEFT)"]
    rows = [
        [label, f"{mean:.4f}", f"{100.0 * (base - mean) / base:+.2f}%"]
        for label, mean in means.items()
    ]
    count = 20 if quick else 200
    return format_table(
        ["configuration", "avg SLR", "gain vs HEFT"],
        rows,
        title=f"E12: ablation over {count} random instances (n=80, q=8)",
    )


# ----------------------------------------------------------------------
# E13: optimality gap on tiny instances
# ----------------------------------------------------------------------
def e13_data(quick: bool = True) -> dict[str, list[float]]:
    """Per-algorithm makespan/optimal ratios over tiny instances."""
    count = 12 if quick else 60
    streams = spawn_children(113, count)
    algs = ["IMP", "HEFT", "CPOP"]
    ratios: dict[str, list[float]] = {a: [] for a in algs}
    opt = BranchAndBoundScheduler(max_tasks=10)
    for i, rng in enumerate(streams):
        n = 5 + (i % 4)
        q = 2 + (i % 2)
        inst = W.random_instance(rng, num_tasks=n, num_procs=q)
        best = opt.schedule(inst)
        validate(best, inst)
        for a in algs:
            span = get_scheduler(a).schedule(inst).makespan
            ratios[a].append(span / best.makespan)
    return ratios


@_register("E13", "Optimality gap on tiny DAGs", "table")
def e13(quick: bool = True) -> str:
    ratios = e13_data(quick)
    rows = [
        [a, f"{float(np.mean(r)):.4f}", f"{float(np.max(r)):.4f}",
         f"{100.0 * float(np.mean([x <= 1.0 + 1e-9 for x in r])):.0f}%"]
        for a, r in ratios.items()
    ]
    count = 12 if quick else 60
    return format_table(
        ["algorithm", "mean makespan/optimal", "worst", "optimal found"],
        rows,
        title=f"E13: optimality gap over {count} tiny instances (n=5..8, q=2..3)",
    )


# ----------------------------------------------------------------------
# E14: robustness under runtime noise
# ----------------------------------------------------------------------
def e14_data(quick: bool = True) -> tuple[list[float], dict[str, list[float]]]:
    cvs = [0.0, 0.2, 0.5] if quick else [0.0, 0.1, 0.2, 0.3, 0.5, 0.8]
    count = 10 if quick else 100
    algs = ["IMP", "HEFT", "CPOP", "DLS"]
    streams = spawn_children(114, count)
    instances = [W.random_instance(rng, num_tasks=80) for rng in streams]
    schedules = {a: [get_scheduler(a).schedule(inst) for inst in instances] for a in algs}
    series: dict[str, list[float]] = {a: [] for a in algs}
    for cv in cvs:
        for a in algs:
            sims = []
            for k, (inst, sch) in enumerate(zip(instances, schedules[a])):
                noise = MultiplicativeNoise(cv, seed=1_000_000 + 1000 * k + int(cv * 100))
                sims.append(execute(sch, inst, noise).makespan / inst.cp_min_length)
            series[a].append(float(np.mean(sims)))
    return cvs, series


@_register("E14", "Robustness: simulated makespan under runtime noise", "figure")
def e14(quick: bool = True) -> str:
    cvs, series = e14_data(quick)
    count = 10 if quick else 100
    return format_series(
        "cv", cvs, series,
        title=f"E14: simulated SLR vs runtime-noise CV over {count} instances (n=80, q=8)",
    )


# ----------------------------------------------------------------------
# E15: duplication cost/benefit
# ----------------------------------------------------------------------
def e15_data(quick: bool = True) -> dict[float, dict[str, tuple[float, float]]]:
    """Per CCR and algorithm: (mean SLR, mean duplicate count)."""
    ccr_values = [0.5, 5.0] if quick else [0.1, 0.5, 1.0, 2.0, 5.0, 10.0]
    count = 10 if quick else 100
    algs = ["HEFT", "DUP-HEFT", "IMP", "TDS"]
    out: dict[float, dict[str, tuple[float, float]]] = {}
    for ccr in ccr_values:
        streams = spawn_children(int(115_000 + ccr * 10), count)
        instances = [W.random_instance(rng, num_tasks=80, ccr=ccr) for rng in streams]
        row: dict[str, tuple[float, float]] = {}
        for a in algs:
            slrs, dups = [], []
            for inst in instances:
                sch = get_scheduler(a).schedule(inst)
                validate(sch, inst)
                slrs.append(slr(sch, inst))
                dups.append(sch.num_duplicates())
            row[a] = (float(np.mean(slrs)), float(np.mean(dups)))
        out[ccr] = row
    return out


@_register("E15", "Duplication cost/benefit vs CCR", "table")
def e15(quick: bool = True) -> str:
    data = e15_data(quick)
    algs = ["HEFT", "DUP-HEFT", "IMP", "TDS"]
    rows = [
        [ccr, *(f"{row[a][0]:.3f}/{row[a][1]:.1f}" for a in algs)]
        for ccr, row in data.items()
    ]
    count = 10 if quick else 100
    return format_table(
        ["ccr", *[f"{a} (SLR/dups)" for a in algs]],
        rows,
        title=f"E15: duplication cost/benefit over {count} instances per CCR (n=80, q=8)",
    )


# ----------------------------------------------------------------------
# E16 - E17: extension experiments (beyond the paper's artifact list;
# see DESIGN.md §4b).
# ----------------------------------------------------------------------
def e16_data(quick: bool = True) -> dict[str, tuple[float, float]]:
    """Quality-vs-time frontier: (mean SLR, mean seconds) per scheduler
    family — constructive (HEFT/IMP), clustering (DSC/LC), search
    (SA/GA)."""
    count = 8 if quick else 50
    streams = spawn_children(116, count)
    instances = [W.random_instance(rng, num_tasks=60, num_procs=6) for rng in streams]
    algs = ["HEFT", "IMP", "DSC", "LC", "SA", "GA"]
    out: dict[str, tuple[float, float]] = {}
    for name in algs:
        slrs, secs = [], []
        for inst in instances:
            scheduler = get_scheduler(name)
            t0 = time.perf_counter()
            schedule = scheduler.schedule(inst)
            secs.append(time.perf_counter() - t0)
            validate(schedule, inst)
            slrs.append(slr(schedule, inst))
        out[name] = (float(np.mean(slrs)), float(np.mean(secs)))
    return out


@_register("E16", "Extension: constructive vs clustering vs search", "table")
def e16(quick: bool = True) -> str:
    data = e16_data(quick)
    rows = [
        [name, f"{s:.4f}", f"{t * 1000:.1f} ms"] for name, (s, t) in data.items()
    ]
    count = 8 if quick else 50
    return format_table(
        ["scheduler", "avg SLR", "avg time"],
        rows,
        title=f"E16: quality vs scheduling time over {count} instances (n=60, q=6)",
    )


def e17_data(quick: bool = True) -> tuple[list[float], dict[str, list[float]]]:
    """Contention-model error: simulated(contention)/planned makespan
    ratio per CCR, per algorithm."""
    ccrs = [0.5, 5.0] if quick else [0.1, 0.5, 1.0, 2.0, 5.0, 10.0]
    count = 8 if quick else 60
    algs = ["HEFT", "IMP", "CPOP"]
    series: dict[str, list[float]] = {a: [] for a in algs}
    for ccr in ccrs:
        streams = spawn_children(int(117_000 + ccr * 10), count)
        instances = [W.random_instance(rng, num_tasks=60, ccr=ccr) for rng in streams]
        for a in algs:
            ratios = []
            for inst in instances:
                schedule = get_scheduler(a).schedule(inst)
                sim = execute(schedule, inst, link_contention=True)
                ratios.append(sim.makespan / schedule.makespan)
            series[a].append(float(np.mean(ratios)))
    return ccrs, series


@_register("E17", "Extension: link-contention error vs CCR", "figure")
def e17(quick: bool = True) -> str:
    ccrs, series = e17_data(quick)
    count = 8 if quick else 60
    return format_series(
        "ccr", ccrs, series,
        title=(
            f"E17: simulated-with-contention / planned makespan over {count} "
            "instances (1.0 = contention-free model exact)"
        ),
    )


def e18_data(quick: bool = True) -> dict[str, tuple[float, float, float]]:
    """DVFS slack reclamation per scheduler: (mean SLR, mean energy
    savings fraction, mean slowed-task fraction)."""
    from repro.energy import PowerModel, reclaim_slack

    count = 8 if quick else 60
    model = PowerModel(static=0.1, dynamic=1.0)
    algs = ["IMP", "HEFT", "CPOP", "RoundRobin"]
    streams = spawn_children(118, count)
    instances = [W.random_instance(rng, num_tasks=80) for rng in streams]
    out: dict[str, tuple[float, float, float]] = {}
    for a in algs:
        slrs, savings, slowed = [], [], []
        for inst in instances:
            schedule = get_scheduler(a).schedule(inst)
            validate(schedule, inst)
            res = reclaim_slack(schedule, inst, model)
            slrs.append(slr(schedule, inst))
            savings.append(res.savings_fraction)
            slowed.append(res.slowed_tasks / inst.num_tasks)
        out[a] = (
            float(np.mean(slrs)),
            float(np.mean(savings)),
            float(np.mean(slowed)),
        )
    return out


@_register("E18", "Extension: DVFS slack reclamation by scheduler", "table")
def e18(quick: bool = True) -> str:
    data = e18_data(quick)
    rows = [
        [a, f"{s:.4f}", f"{100 * e:.2f}%", f"{100 * fr:.1f}%"]
        for a, (s, e, fr) in data.items()
    ]
    count = 8 if quick else 60
    return format_table(
        ["scheduler", "avg SLR", "energy saved", "tasks slowed"],
        rows,
        title=(
            f"E18: energy reclaimed from schedule slack over {count} instances "
            "(n=80, q=8, static=0.1, dynamic=1.0)"
        ),
    )
