"""Client retry loop: golden backoff schedules under a seeded rng, the
Retry-After floor, retry budgets, and end-to-end retry-until-success
against a server that sheds load."""

from __future__ import annotations

import asyncio

import pytest

from repro.bench import workloads as W
from repro.service.client import ServiceClient
from repro.service.engine import EngineConfig, SchedulingEngine
from repro.service.errors import ServiceOverloadedError, ServiceTimeoutError
from repro.service.resilience import Deadline, RetryPolicy, RetryStats, _RetryState
from repro.service.server import ScheduleServer
from repro.utils.rng import as_generator


def _instance(seed: int = 5):
    return W.random_instance(as_generator(seed), num_tasks=6, num_procs=3)


def _recording_sleep(log: list):
    async def sleep(delay: float) -> None:
        log.append(delay)

    return sleep


# ----------------------------------------------------------------------
# policy unit behaviour
# ----------------------------------------------------------------------
def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=1.0, max_delay=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(budget_s=-1.0)


def test_golden_backoff_schedule_seed_42():
    """Pinned decorrelated-jitter sequence: any change to the draw order
    or the jitter formula shows up as a diff against these literals."""
    policy = RetryPolicy(max_retries=4, base_delay=0.05, max_delay=2.0,
                         budget_s=30.0, seed=42)
    assert policy.schedule() == pytest.approx(
        [0.113942679846, 0.057298839664, 0.08352511653, 0.094770571836]
    )


def test_golden_schedule_with_retry_after_floors():
    policy = RetryPolicy(max_retries=3, base_delay=0.05, max_delay=2.0,
                         budget_s=30.0, seed=42)
    # The 0.3s server hint floors the first two draws; the third draw is
    # decorrelated from the (floored) previous delay.
    assert policy.schedule(retry_afters=(0.3, 0.3, None)) == pytest.approx(
        [0.3, 0.3, 0.283774920614]
    )


def test_retry_after_floor_and_cap():
    policy = RetryPolicy(seed=0, base_delay=0.05, max_delay=2.0)
    assert policy.next_delay(0.05, retry_after=1.5) >= 1.5
    # An absurd server hint is still capped by max_delay.
    assert policy.next_delay(0.05, retry_after=60.0) == pytest.approx(2.0)


def test_schedule_truncated_by_budget():
    policy = RetryPolicy(max_retries=10, base_delay=1.0, max_delay=2.0,
                         budget_s=2.5, seed=1)
    delays = policy.schedule()
    assert sum(delays) <= 2.5
    assert len(delays) < 10


def test_retry_state_respects_deadline_with_injected_clock():
    now = {"t": 0.0}
    clock = lambda: now["t"]  # noqa: E731
    policy = RetryPolicy(max_retries=10, base_delay=1.0, max_delay=1.0,
                         budget_s=100.0, seed=0, clock=clock)
    state = _RetryState(policy, RetryStats(), Deadline(5.0))
    assert state.admits(1.0)
    now["t"] = 4.5  # sleeping 1.0s would overshoot the deadline
    assert not state.admits(1.0)


def test_retry_state_gives_up_after_max_retries():
    async def scenario():
        slept: list[float] = []
        policy = RetryPolicy(max_retries=2, base_delay=0.01, max_delay=0.02,
                             seed=3, sleep=_recording_sleep(slept))
        stats = RetryStats()
        state = _RetryState(policy, stats)
        assert await state.backoff() is True
        assert await state.backoff() is True
        assert await state.backoff() is False
        assert stats.retries == 2
        assert stats.giveups == 1
        assert stats.backoff_s == pytest.approx(sum(slept))

    asyncio.run(scenario())


# ----------------------------------------------------------------------
# end-to-end: client retries against a shedding server
# ----------------------------------------------------------------------
async def _boot(**config):
    engine = SchedulingEngine(EngineConfig(workers=0, **config))
    server = ScheduleServer(engine, port=0)
    await server.start()
    return server


def test_client_retries_429_until_success_with_golden_delays():
    async def scenario():
        server = await _boot()
        engine = server.engine
        real_submit = engine.submit
        calls = {"n": 0}

        async def shedding_submit(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] <= 2:
                exc = ServiceOverloadedError("queue full (forced)")
                exc.retry_after = 0.3
                raise exc
            return await real_submit(*args, **kwargs)

        engine.submit = shedding_submit
        try:
            slept: list[float] = []
            policy = RetryPolicy(max_retries=3, base_delay=0.05, max_delay=2.0,
                                 budget_s=30.0, seed=42,
                                 sleep=_recording_sleep(slept))
            client = ServiceClient(port=server.port, retry_policy=policy)
            result = await client.schedule(_instance(), "HEFT")
            assert result.makespan > 0
            assert client.retry_stats.attempts == 3
            assert client.retry_stats.retries == 2
            assert client.retry_stats.giveups == 0
            # The server's Retry-After: 0.3 floors both jitter draws —
            # the same golden sequence as RetryPolicy.schedule((0.3, 0.3)).
            assert slept == pytest.approx([0.3, 0.3])
        finally:
            await server.stop(drain=False)

    asyncio.run(scenario())


def test_client_without_policy_fails_fast_and_carries_retry_after():
    async def scenario():
        server = await _boot()

        async def shedding_submit(*args, **kwargs):
            exc = ServiceOverloadedError("queue full (forced)")
            exc.retry_after = 0.123
            raise exc

        server.engine.submit = shedding_submit
        try:
            client = ServiceClient(port=server.port)
            with pytest.raises(ServiceOverloadedError) as info:
                await client.schedule(_instance(), "HEFT")
            # Round-tripped through the HTTP Retry-After header.
            assert info.value.retry_after == pytest.approx(0.123)
            assert client.retry_stats.retries == 0
        finally:
            await server.stop(drain=False)

    asyncio.run(scenario())


def test_client_gives_up_when_policy_exhausted():
    async def scenario():
        server = await _boot()

        async def always_shedding(*args, **kwargs):
            raise ServiceOverloadedError("queue full (forced)")

        server.engine.submit = always_shedding
        try:
            slept: list[float] = []
            policy = RetryPolicy(max_retries=2, base_delay=0.01, max_delay=0.02,
                                 seed=1, sleep=_recording_sleep(slept))
            client = ServiceClient(port=server.port, retry_policy=policy)
            with pytest.raises(ServiceOverloadedError):
                await client.schedule(_instance(), "HEFT")
            assert client.retry_stats.attempts == 3  # 1 first try + 2 retries
            assert client.retry_stats.retries == 2
            assert client.retry_stats.giveups == 1
            assert len(slept) == 2
        finally:
            await server.stop(drain=False)

    asyncio.run(scenario())


def test_client_retries_connection_refused():
    async def scenario():
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()  # nobody listens here any more

        slept: list[float] = []
        policy = RetryPolicy(max_retries=2, base_delay=0.01, max_delay=0.02,
                             seed=2, sleep=_recording_sleep(slept))
        client = ServiceClient(port=free_port, retry_policy=policy)
        with pytest.raises(OSError):
            await client.schedule(_instance(), "HEFT")
        assert client.retry_stats.attempts == 3
        assert client.retry_stats.retries == 2

    asyncio.run(scenario())


def test_retry_loop_never_outlives_request_deadline():
    """timeout= bounds the whole call, retries included: a policy with a
    huge retry count must still give up at the request deadline."""

    async def scenario():
        server = await _boot()

        async def always_shedding(*args, **kwargs):
            raise ServiceOverloadedError("queue full (forced)")

        server.engine.submit = always_shedding
        try:
            policy = RetryPolicy(max_retries=1000, base_delay=0.2, max_delay=0.5,
                                 seed=4)
            client = ServiceClient(port=server.port, retry_policy=policy)
            with pytest.raises((ServiceOverloadedError, ServiceTimeoutError)):
                await asyncio.wait_for(
                    client.schedule(_instance(), "HEFT", timeout=0.5), 10.0
                )
            assert client.retry_stats.giveups == 1
        finally:
            await server.stop(drain=False)

    asyncio.run(scenario())
