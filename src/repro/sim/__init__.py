"""Discrete-event execution simulator.

Replays a static :class:`~repro.schedule.schedule.Schedule` on its
machine, re-deriving all start/finish times from first principles
(processor order + message arrivals) independently of the scheduler's
bookkeeping — optionally under stochastic runtime noise, which is how
the robustness experiment (E14) measures how schedules degrade when
execution times deviate from the ETC estimates.
"""

from repro.sim.arrivals import (
    Arrival,
    ArrivalProcess,
    PoissonArrivals,
    TraceArrivals,
    trace_from_json,
    trace_to_json,
)
from repro.sim.cluster import ClusterState
from repro.sim.engine import Event, EventQueue
from repro.sim.noise import MultiplicativeNoise, NoiseModel, NoNoise, PerProcessorDrift
from repro.sim.executor import SimulatedCopy, SimulationResult, execute, proc_sort_key
from repro.sim.online import (
    OnlineJobRecord,
    OnlineResult,
    OnlineScheduler,
    build_templates,
    simulate_online,
)
from repro.sim.policies import (
    BoundedPreemptPolicy,
    PendingJob,
    QueuePolicy,
    ReplacePendingPolicy,
    ReschedulePolicy,
    all_policy_names,
    get_policy,
    register_policy,
)
from repro.sim.trace import save_chrome_trace, to_chrome_trace

__all__ = [
    "Arrival",
    "ArrivalProcess",
    "PoissonArrivals",
    "TraceArrivals",
    "trace_to_json",
    "trace_from_json",
    "ClusterState",
    "Event",
    "EventQueue",
    "NoiseModel",
    "NoNoise",
    "MultiplicativeNoise",
    "PerProcessorDrift",
    "SimulatedCopy",
    "SimulationResult",
    "execute",
    "proc_sort_key",
    "OnlineJobRecord",
    "OnlineResult",
    "OnlineScheduler",
    "build_templates",
    "simulate_online",
    "PendingJob",
    "ReschedulePolicy",
    "QueuePolicy",
    "ReplacePendingPolicy",
    "BoundedPreemptPolicy",
    "register_policy",
    "get_policy",
    "all_policy_names",
    "to_chrome_trace",
    "save_chrome_trace",
]
