"""LA-HEFT: HEFT priorities with one-level lookahead placement only.

Isolates improvement (2) of the contribution so the ablation bench can
price it separately.
"""

from __future__ import annotations

from repro.core.placement import PlacementEngine
from repro.exceptions import SchedulingError
from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import Scheduler
from repro.schedulers.ranking import RankAggregation, upward_ranks


class LookaheadScheduler(Scheduler):
    """HEFT order + lookahead processor selection (no duplication)."""

    def __init__(self, agg: RankAggregation = "mean") -> None:
        self.agg = agg
        self.name = "LA-HEFT"
        self._engine = PlacementEngine(lookahead=True, duplication=False)

    def schedule(self, instance: Instance) -> Schedule:
        ranks = upward_ranks(instance, self.agg)
        pos = {t: i for i, t in enumerate(instance.dag.topological_order())}
        order = sorted(instance.dag.tasks(), key=lambda t: (-ranks[t], pos[t]))
        schedule = Schedule(instance.machine, name=f"{self.name}:{instance.name}")
        for task in order:
            self._engine.place(schedule, instance, task, ranks)
        if len(schedule) != instance.num_tasks:
            raise SchedulingError(f"{self.name} scheduled {len(schedule)}/{instance.num_tasks}")
        return schedule
