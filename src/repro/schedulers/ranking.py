"""Machine-aware task ranks.

Unlike :mod:`repro.dag.analysis` (which works on nominal DAG costs),
these ranks average over the instance's ETC matrix and communication
model — the quantities list schedulers actually prioritise with.
"""

from __future__ import annotations

from typing import Callable, Literal

from repro.exceptions import ConfigurationError
from repro.instance import Instance
from repro.kernels import kernels_enabled
from repro.types import TaskId

#: How a task's heterogeneous execution times are collapsed to a scalar
#: when computing ranks.  ``mean`` is HEFT's choice; the alternatives are
#: the rank variants the improved scheduler can search over.
RankAggregation = Literal["mean", "median", "best", "worst"]


def _weight_fn(instance: Instance, agg: RankAggregation) -> Callable[[TaskId], float]:
    if agg == "mean":
        return instance.etc.mean
    if agg == "median":
        return instance.etc.median
    if agg == "best":
        return instance.etc.best
    if agg == "worst":
        return instance.etc.worst
    raise ConfigurationError(f"unknown rank aggregation {agg!r}")


def upward_ranks(instance: Instance, agg: RankAggregation = "mean") -> dict[TaskId, float]:
    """HEFT's upward rank: ``rank_u(t) = w(t) + max_s (c̄(t,s) + rank_u(s))``.

    ``w`` is the per-task ETC aggregate chosen by ``agg``; ``c̄`` the
    machine's average communication time for the edge.  Exit tasks rank
    at their own weight.

    Dispatches to the instance's vectorized rank kernel (cached per
    aggregation) unless the kernel layer is disabled; both paths produce
    bit-identical floats.
    """
    if kernels_enabled():
        return dict(instance.kernel.upward(agg))
    return upward_ranks_scalar(instance, agg)


def upward_ranks_scalar(instance: Instance, agg: RankAggregation = "mean") -> dict[TaskId, float]:
    """Reference scalar implementation of :func:`upward_ranks`.

    Kept as the specification the vectorized kernel is differentially
    tested against (``tests/core/test_vectorized_equivalence.py``).
    """
    w = _weight_fn(instance, agg)
    dag = instance.dag
    rank: dict[TaskId, float] = {}
    for t in reversed(dag.topological_order()):
        tail = 0.0
        for s in dag.successors(t):
            cand = instance.avg_comm_time(t, s) + rank[s]
            if cand > tail:
                tail = cand
        rank[t] = w(t) + tail
    return rank


def downward_ranks(instance: Instance, agg: RankAggregation = "mean") -> dict[TaskId, float]:
    """CPOP's downward rank: longest average path from an entry task to
    ``t`` excluding ``t``'s own weight.

    Dispatches to the cached vectorized kernel like :func:`upward_ranks`.
    """
    if kernels_enabled():
        return dict(instance.kernel.downward(agg))
    return downward_ranks_scalar(instance, agg)


def downward_ranks_scalar(instance: Instance, agg: RankAggregation = "mean") -> dict[TaskId, float]:
    """Reference scalar implementation of :func:`downward_ranks`."""
    w = _weight_fn(instance, agg)
    dag = instance.dag
    rank: dict[TaskId, float] = {}
    for t in dag.topological_order():
        best = 0.0
        for p in dag.predecessors(t):
            cand = rank[p] + w(p) + instance.avg_comm_time(p, t)
            if cand > best:
                best = cand
        rank[t] = best
    return rank


def machine_static_levels(instance: Instance, agg: RankAggregation = "median") -> dict[TaskId, float]:
    """Static level: upward rank *without* communication terms.

    DLS traditionally uses the median execution time, hence the default.
    """
    w = _weight_fn(instance, agg)
    dag = instance.dag
    level: dict[TaskId, float] = {}
    for t in reversed(dag.topological_order()):
        tail = max((level[s] for s in dag.successors(t)), default=0.0)
        level[t] = w(t) + tail
    return level


def est_times(instance: Instance, agg: RankAggregation = "mean") -> dict[TaskId, float]:
    """Machine-averaged earliest start times (unbounded processors)."""
    w = _weight_fn(instance, agg)
    dag = instance.dag
    est: dict[TaskId, float] = {}
    for t in dag.topological_order():
        best = 0.0
        for p in dag.predecessors(t):
            cand = est[p] + w(p) + instance.avg_comm_time(p, t)
            if cand > best:
                best = cand
        est[t] = best
    return est


def alap_times(instance: Instance, agg: RankAggregation = "mean") -> dict[TaskId, float]:
    """As-late-as-possible start times against the average-cost critical
    path (MCP's priority).  Smaller ALAP = more urgent."""
    w = _weight_fn(instance, agg)
    dag = instance.dag
    # Longest average path length defines the deadline every exit task
    # must meet.
    ranks = upward_ranks(instance, agg)
    horizon = max(ranks.values(), default=0.0)
    alap: dict[TaskId, float] = {}
    for t in reversed(dag.topological_order()):
        succs = dag.successors(t)
        if not succs:
            alap[t] = horizon - w(t)
        else:
            alap[t] = min(alap[s] - instance.avg_comm_time(t, s) for s in succs) - w(t)
    return alap


def critical_path_tasks(instance: Instance, agg: RankAggregation = "mean") -> list[TaskId]:
    """The CPOP critical path: tasks with maximal rank_u + rank_d, chained
    from an entry to an exit, ties broken by topological position."""
    up = upward_ranks(instance, agg)
    down = downward_ranks(instance, agg)
    dag = instance.dag
    if instance.num_tasks == 0:
        return []
    total = {t: up[t] + down[t] for t in dag.tasks()}
    cp_value = max(total.values())
    order = dag.topological_order()
    pos = {t: i for i, t in enumerate(order)}

    def on_cp(t: TaskId) -> bool:
        return abs(total[t] - cp_value) <= 1e-9 * max(1.0, cp_value)

    entries = [t for t in dag.entry_tasks() if on_cp(t)]
    if not entries:
        # Numerical corner: fall back to the highest-priority entry.
        entries = sorted(dag.entry_tasks(), key=lambda t: (-total[t], pos[t]))[:1]
    current = min(entries, key=lambda t: pos[t])
    path = [current]
    while True:
        nxt = [s for s in dag.successors(current) if on_cp(s)]
        if not nxt:
            return path
        current = min(nxt, key=lambda s: pos[s])
        path.append(current)
