"""E2 — Average SLR vs CCR (random graphs).

Expected shape: all SLRs grow with CCR; the improved scheduler's margin
over HEFT *widens* as communication dominates (duplication and
lookahead both target communication).
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e2_data
from repro.schedulers.registry import get_scheduler

from conftest import series_mean


def test_e2_shape(quick):
    res = e2_data(quick)
    print("\n" + res.table("E2: average SLR vs CCR"))
    assert series_mean(res, "IMP") <= series_mean(res, "HEFT") + 1e-9
    # SLR increases with CCR for every algorithm (monotone trend between
    # the extreme x points).
    for name, vals in res.series.items():
        assert vals[-1] > vals[0], name
    # Margin over HEFT at the highest CCR is at least the margin at the
    # lowest (communication is where the contribution earns its keep).
    gain_low = res.series["HEFT"][0] - res.series["IMP"][0]
    gain_high = res.series["HEFT"][-1] - res.series["IMP"][-1]
    assert gain_high >= gain_low - 0.02


def test_e2_benchmark_high_ccr(benchmark):
    rng = np.random.default_rng(202)
    inst = W.random_instance(rng, num_tasks=100, ccr=5.0)
    result = benchmark(get_scheduler("IMP").schedule, inst)
    assert result.makespan > 0
