"""E1 — Average SLR vs DAG size (random graphs).

Expected shape (EXPERIMENTS.md): the improved scheduler dominates HEFT
and CPOP at every size; SLR grows slowly with size for all algorithms.
"""

import numpy as np

from repro.bench.registry import e1, e1_data
from repro.schedulers.registry import get_scheduler

from conftest import series_mean


def test_e1_shape(quick):
    res = e1_data(quick)
    print("\n" + res.table("E1: average SLR vs DAG size"))
    # Contribution dominates the baselines on average across sizes.
    assert series_mean(res, "IMP") <= series_mean(res, "HEFT") + 1e-9
    assert series_mean(res, "IMP") <= series_mean(res, "CPOP") + 1e-9
    assert series_mean(res, "IMP") <= series_mean(res, "PETS") + 1e-9
    # All SLRs are sane (>= 1).
    for name, vals in res.series.items():
        assert all(v >= 1.0 - 1e-9 for v in vals), name


def test_e1_report_renders(quick):
    report = e1(quick)
    assert "E1" in report and "IMP" in report


def test_e1_benchmark_imp(benchmark, representative_instance):
    scheduler = get_scheduler("IMP")
    result = benchmark(scheduler.schedule, representative_instance)
    assert result.makespan > 0


def test_e1_benchmark_heft(benchmark, representative_instance):
    scheduler = get_scheduler("HEFT")
    result = benchmark(scheduler.schedule, representative_instance)
    assert result.makespan > 0
