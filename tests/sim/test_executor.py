"""Tests for the schedule executor (simulation semantics)."""

import pytest

from repro.dag.generators import out_tree_dag, random_dag
from repro.instance import homogeneous_instance, make_instance
from repro.schedule.schedule import Schedule
from repro.sim.executor import execute
from repro.sim.engine import SimulationError
from repro.sim.noise import MultiplicativeNoise, NoNoise
from repro.schedulers.heft import HEFT
from repro.schedulers.duplication_tds import TDS
from repro.core import DuplicationScheduler


class TestExactReplay:
    @pytest.mark.parametrize("seed", range(4))
    def test_heft_schedules_replay_exactly(self, seed):
        dag = random_dag(40, seed=seed)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=seed)
        s = HEFT().schedule(inst)
        res = execute(s, inst)
        assert res.makespan == pytest.approx(s.makespan)

    def test_duplication_schedules_replay(self):
        dag = out_tree_dag(2, 4, cost_scale=5.0, data_scale=40.0)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=1)
        s = DuplicationScheduler().schedule(inst)
        res = execute(s, inst)
        assert res.makespan == pytest.approx(s.makespan)

    def test_tds_replay(self, topcuoglu_instance):
        s = TDS().schedule(topcuoglu_instance)
        res = execute(s, topcuoglu_instance)
        assert res.makespan <= s.makespan + 1e-9

    def test_simulation_never_exceeds_plan_without_noise(self):
        # Left-shifted replays can only be earlier.
        for seed in range(3):
            dag = random_dag(30, seed=seed)
            inst = make_instance(dag, num_procs=3, seed=seed)
            s = HEFT().schedule(inst)
            assert execute(s, inst).makespan <= s.makespan + 1e-9

    def test_copy_records_complete(self, topcuoglu_instance):
        s = HEFT().schedule(topcuoglu_instance)
        res = execute(s, topcuoglu_instance)
        assert len(res.copies) == 10
        assert res.events_processed > 0

    def test_end_of(self, topcuoglu_instance):
        s = HEFT().schedule(topcuoglu_instance)
        res = execute(s, topcuoglu_instance)
        assert res.end_of(10) == pytest.approx(res.makespan)
        with pytest.raises(SimulationError):
            res.end_of("ghost")


class TestHandBuiltSemantics:
    def test_remote_data_delays_start(self, diamond_dag):
        inst = homogeneous_instance(diamond_dag, num_procs=2, bandwidth=1.0)
        s = Schedule(inst.machine)
        s.add("a", 0, 0.0, 2.0)
        s.add("b", 0, 2.0, 4.0)
        s.add("c", 1, 3.0, 3.0)
        s.add("d", 0, 8.0, 2.0)
        res = execute(s, inst)
        d = next(c for c in res.copies if c.task == "d")
        assert d.start == pytest.approx(8.0)  # waits for c's remote data

    def test_left_shift_closes_idle(self, diamond_dag):
        # Artificially padded schedule: simulation starts tasks as soon
        # as ready, ignoring the pad.
        inst = homogeneous_instance(diamond_dag, num_procs=2, bandwidth=1e9)
        s = Schedule(inst.machine)
        s.add("a", 0, 0.0, 2.0)
        s.add("b", 0, 10.0, 4.0)   # padded start
        s.add("c", 1, 10.0, 3.0)
        s.add("d", 0, 20.0, 2.0)
        res = execute(s, inst)
        assert res.makespan < s.makespan
        b = next(c for c in res.copies if c.task == "b")
        assert b.start == pytest.approx(2.0)

    def test_proc_order_preserved(self, diamond_dag):
        # Even if swapping would be faster, the static per-proc sequence
        # is respected: c (planned first on P0) runs before b.
        inst = homogeneous_instance(diamond_dag, num_procs=1)
        s = Schedule(inst.machine)
        s.add("a", 0, 0.0, 2.0)
        s.add("c", 0, 2.0, 3.0)
        s.add("b", 0, 5.0, 4.0)
        s.add("d", 0, 9.0, 2.0)
        res = execute(s, inst)
        c = next(x for x in res.copies if x.task == "c")
        b = next(x for x in res.copies if x.task == "b")
        assert c.start < b.start


class TestNoise:
    def test_noise_changes_makespan(self, topcuoglu_instance):
        s = HEFT().schedule(topcuoglu_instance)
        noisy = execute(s, topcuoglu_instance, MultiplicativeNoise(0.5, seed=1))
        exact = execute(s, topcuoglu_instance, NoNoise())
        assert noisy.makespan != pytest.approx(exact.makespan)

    def test_noise_deterministic(self, topcuoglu_instance):
        s = HEFT().schedule(topcuoglu_instance)
        a = execute(s, topcuoglu_instance, MultiplicativeNoise(0.5, seed=2)).makespan
        b = execute(s, topcuoglu_instance, MultiplicativeNoise(0.5, seed=2)).makespan
        assert a == b

    def test_precedence_respected_under_noise(self, topcuoglu_instance):
        s = HEFT().schedule(topcuoglu_instance)
        res = execute(s, topcuoglu_instance, MultiplicativeNoise(0.8, seed=3))
        ends = {c.task: c.end for c in res.copies}
        starts = {c.task: c.start for c in res.copies}
        for u, v in topcuoglu_instance.dag.edges():
            assert starts[v] >= ends[u] - 1e-9 or True  # comm may be 0 local
            # Stronger: child cannot start before parent's finish when on
            # a different processor (positive transfer time).
        for c in res.copies:
            for parent in topcuoglu_instance.dag.predecessors(c.task):
                assert c.start >= min(
                    p.end for p in res.copies if p.task == parent
                ) - 1e-9
