#!/usr/bin/env python3
"""Multi-workflow scheduling: several applications sharing one cluster.

Composes three applications into one scheduling problem, compares the
shared schedule against each application running alone (slowdowns and
the fairness spread), and exports a Chrome-trace of the simulated
execution for inspection in chrome://tracing or Perfetto.

Run:  python examples/multi_workflow.py
"""

from repro import make_instance, validate
from repro.dag.compose import disjoint_union, per_dag_spans, unfairness
from repro.dag.generators import fft_dag, gaussian_elimination_dag, montage_dag
from repro.schedulers import get_scheduler
from repro.sim import execute, save_chrome_trace

PROCESSORS = 6
SEED = 2007

apps = {
    "gauss": gaussian_elimination_dag(7),
    "fft": fft_dag(16),
    "montage": montage_dag(8, seed=3),
}

# -- solo baselines: each application alone on the full cluster --------
solo_spans = {}
for tag, dag in apps.items():
    inst = make_instance(dag, num_procs=PROCESSORS, heterogeneity=0.5, seed=SEED)
    schedule = get_scheduler("IMP").schedule(inst)
    validate(schedule, inst)
    solo_spans[tag] = schedule.makespan
    print(f"solo {tag:8s}: {dag.num_tasks:3d} tasks, makespan {schedule.makespan:8.2f}")

# -- shared run: one composite DAG, same machine ------------------------
composite = disjoint_union(apps)
shared_inst = make_instance(composite, num_procs=PROCESSORS,
                            heterogeneity=0.5, seed=SEED)

print(f"\nshared machine, {composite.num_tasks} tasks total:")
for alg in ("IMP", "HEFT", "RoundRobin"):
    schedule = get_scheduler(alg).schedule(shared_inst)
    validate(schedule, shared_inst)
    spans = per_dag_spans(schedule, composite)
    fairness = unfairness(schedule, composite, solo_spans)
    slowdowns = ", ".join(
        f"{tag} {spans[tag] / solo_spans[tag]:.2f}x" for tag in apps
    )
    print(f"  {alg:10s} makespan {schedule.makespan:8.2f}  "
          f"slowdowns: {slowdowns}  unfairness {fairness:.3f}")

# -- export a trace of the simulated shared execution -------------------
best = get_scheduler("IMP").schedule(shared_inst)
result = execute(best, shared_inst)
out = "multi_workflow_trace.json"
save_chrome_trace(result, out, process_name="3 workflows on 6 processors")
print(f"\nsimulated {result.events_processed} events; "
      f"trace written to {out} (open in chrome://tracing)")
