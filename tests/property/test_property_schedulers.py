"""Property-based tests: every scheduler produces feasible schedules on
arbitrary instances, and core algorithm invariants hold."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ImprovedScheduler
from repro.dag.generators import random_dag
from repro.instance import make_instance
from repro.schedule.validation import violations
from repro.schedulers.registry import get_scheduler
from repro.sim import execute

#: Schedulers exercised under hypothesis (a cross-section of policies:
#: static list, dynamic list, pinned-CP, duplication, contribution).
NAMES = ["HEFT", "CPOP", "DLS", "MCP", "TDS", "IMP"]

instance_params = st.tuples(
    st.integers(min_value=1, max_value=25),   # tasks
    st.integers(min_value=1, max_value=5),    # procs
    st.floats(min_value=0.0, max_value=8.0),  # ccr
    st.floats(min_value=0.0, max_value=1.5),  # heterogeneity
    st.integers(min_value=0, max_value=10_000),  # seed
)


def build(params):
    n, q, ccr, beta, seed = params
    dag = random_dag(n, ccr=ccr, seed=seed)
    return make_instance(dag, num_procs=q, heterogeneity=beta, seed=seed)


@given(instance_params, st.sampled_from(NAMES))
@settings(max_examples=120, deadline=None)
def test_always_feasible(params, name):
    instance = build(params)
    schedule = get_scheduler(name).schedule(instance)
    assert violations(schedule, instance) == []
    assert len(schedule) == instance.num_tasks


@given(instance_params)
@settings(max_examples=60, deadline=None)
def test_improved_never_worse_than_heft(params):
    instance = build(params)
    imp = ImprovedScheduler().schedule(instance).makespan
    heft = get_scheduler("HEFT").schedule(instance).makespan
    assert imp <= heft + 1e-6


@given(instance_params, st.sampled_from(NAMES))
@settings(max_examples=60, deadline=None)
def test_simulator_agrees(params, name):
    instance = build(params)
    schedule = get_scheduler(name).schedule(instance)
    replay = execute(schedule, instance)
    assert replay.makespan <= schedule.makespan + 1e-6


@given(instance_params)
@settings(max_examples=60, deadline=None)
def test_makespan_at_least_cp_bound(params):
    # Note: there is deliberately no `makespan <= sequential_time`
    # assertion — greedy EFT has no such guarantee (hypothesis found a
    # real counterexample at high CCR with q=2 during development).
    instance = build(params)
    schedule = get_scheduler("HEFT").schedule(instance)
    assert schedule.makespan >= instance.cp_min_length - 1e-6
