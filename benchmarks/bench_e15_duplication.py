"""E15 — Duplication cost/benefit vs CCR.

Expected shape: selective duplication (DUP-HEFT, IMP) produces few
duplicates at low CCR and more as communication grows, always helping
or matching HEFT; whole-chain duplication (TDS) floods the bounded
machine with copies and loses badly — the motivating contrast for the
contribution's *selective* policy.
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e15, e15_data
from repro.schedulers.registry import get_scheduler


def test_e15_shape(quick):
    data = e15_data(quick)
    print("\n" + e15(quick))
    ccrs = sorted(data)
    lo, hi = ccrs[0], ccrs[-1]
    # HEFT never duplicates; the selective schemes do so sparingly.
    for ccr in ccrs:
        assert data[ccr]["HEFT"][1] == 0.0
        assert data[ccr]["DUP-HEFT"][0] <= data[ccr]["HEFT"][0] + 1e-9
        assert data[ccr]["IMP"][0] <= data[ccr]["HEFT"][0] + 1e-9
    # Whole-chain duplication produces far more copies than selective.
    assert data[hi]["TDS"][1] > data[hi]["DUP-HEFT"][1]
    # And performs worse than the contribution at high CCR.
    assert data[hi]["TDS"][0] > data[hi]["IMP"][0]


def test_e15_benchmark_dup(benchmark):
    rng = np.random.default_rng(215)
    inst = W.random_instance(rng, num_tasks=80, ccr=5.0)
    result = benchmark(get_scheduler("DUP-HEFT").schedule, inst)
    assert result.makespan > 0


def test_e15_benchmark_tds(benchmark):
    rng = np.random.default_rng(215)
    inst = W.random_instance(rng, num_tasks=80, ccr=5.0)
    result = benchmark(get_scheduler("TDS").schedule, inst)
    assert result.makespan > 0
