"""Tiled Cholesky factorisation task graph.

The right-looking tiled Cholesky of a ``t x t`` tile matrix produces
four task kinds per step ``k``:

* ``POTRF(k)`` — factor the diagonal tile,
* ``TRSM(k, i)`` (``i > k``) — solve the panel tiles,
* ``SYRK(k, i)`` (``i > k``) — symmetric update of diagonal tile ``i``,
* ``GEMM(k, i, j)`` (``k < i < j``) — update of off-diagonal tile
  ``(i, j)``.

Dependencies follow data flow on the tiles: a step-``k`` consumer of
tile ``(a, b)`` depends on the step-``k-1`` producer of that tile.
This is the canonical dense-linear-algebra workflow used to stress
schedulers with mixed fan-out and chain structure; ``t`` tiles yield
``t(t+1)(t+2)/6 + ...`` ~ O(t³) tasks, so keep ``t`` modest.

Costs reflect the kernels' flop counts on ``b x b`` tiles relative to
``cost_scale`` (POTRF 1/3, TRSM 1, SYRK 1, GEMM 2); every edge carries
one tile (``data_scale`` units).
"""

from __future__ import annotations

from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import ConfigurationError


def cholesky_dag(
    tiles: int,
    cost_scale: float = 10.0,
    data_scale: float = 10.0,
    name: str | None = None,
) -> TaskDAG:
    """Build the tiled-Cholesky DAG for a ``tiles x tiles`` tile matrix."""
    t = tiles
    if t < 1:
        raise ConfigurationError(f"tiles must be >= 1, got {t}")
    if cost_scale <= 0 or data_scale < 0:
        raise ConfigurationError("cost_scale must be > 0 and data_scale >= 0")

    dag = TaskDAG(name or f"cholesky-t{t}")

    def add(kind: str, *idx: int, cost: float) -> tuple:
        tid = (kind, *idx)
        dag.add_task(Task(id=tid, cost=cost, name=f"{kind}{idx}", attrs={"kind": kind}))
        return tid

    # writer[(a, b)] is the task that last wrote tile (a, b).
    writer: dict[tuple[int, int], tuple] = {}

    for k in range(t):
        potrf = add("POTRF", k, cost=cost_scale / 3.0)
        if (k, k) in writer:
            dag.add_edge(writer[(k, k)], potrf, data=data_scale)
        writer[(k, k)] = potrf

        for i in range(k + 1, t):
            trsm = add("TRSM", k, i, cost=cost_scale)
            dag.add_edge(potrf, trsm, data=data_scale)
            if (i, k) in writer:
                dag.add_edge(writer[(i, k)], trsm, data=data_scale)
            writer[(i, k)] = trsm

        for i in range(k + 1, t):
            syrk = add("SYRK", k, i, cost=cost_scale)
            dag.add_edge(writer[(i, k)], syrk, data=data_scale)
            if (i, i) in writer:
                dag.add_edge(writer[(i, i)], syrk, data=data_scale)
            writer[(i, i)] = syrk

            for j in range(i + 1, t):
                gemm = add("GEMM", k, i, j, cost=2.0 * cost_scale)
                dag.add_edge(writer[(i, k)], gemm, data=data_scale)
                dag.add_edge(writer[(j, k)], gemm, data=data_scale)
                if (j, i) in writer:
                    dag.add_edge(writer[(j, i)], gemm, data=data_scale)
                writer[(j, i)] = gemm
    return dag
