"""Engine fault-tolerance: pool self-healing, respawn budget, deadline
propagation, and the shutdown/slot-accounting regressions.

Everything here runs with ``workers=0`` (thread execution) so worker
death can be *injected* deterministically — a monkeypatched compute
function raising ``BrokenProcessPool`` is indistinguishable, at the
engine's level, from a pool whose process was OOM-killed.  Real process
death (``os._exit`` inside a forked worker) is covered end-to-end by
``test_chaos.py``.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.bench import workloads as W
from repro.service import engine as engine_mod
from repro.service import protocol
from repro.service.engine import EngineConfig, SchedulingEngine
from repro.service.errors import (
    ServiceClosedError,
    ServiceTimeoutError,
)
from repro.service.resilience import Deadline
from repro.utils.rng import as_generator


def _instance(seed: int = 7, num_tasks: int = 8):
    return W.random_instance(as_generator(seed), num_tasks=num_tasks, num_procs=3)


def _run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# pool self-healing
# ----------------------------------------------------------------------
def test_broken_pool_heals_and_reexecutes_job(monkeypatch):
    real = protocol.compute_schedule_payload
    calls = {"n": 0}

    def dies_once(text, alg):
        calls["n"] += 1
        if calls["n"] == 1:
            raise BrokenProcessPool("worker died")
        return real(text, alg)

    monkeypatch.setattr(protocol, "compute_schedule_payload", dies_once)

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0, max_respawns=3))
        await engine.start()
        try:
            payload = await engine.submit(_instance(), "HEFT")
            assert payload["placements"], "healed job must return a real payload"
            stats = engine.stats()
            assert stats.respawns == 1
            assert stats.retries == 1
            assert stats.errors == 0, "worker death must not surface as WorkerError"
            assert engine.pool_generation == 1
        finally:
            await engine.stop()

    _run(scenario())


def test_healed_payload_is_bit_identical_to_fault_free(monkeypatch):
    real = protocol.compute_schedule_payload
    inst = _instance(seed=11)
    import json

    from repro.instance_io import instance_to_json

    expected = real(instance_to_json(inst), "HEFT")
    calls = {"n": 0}

    def dies_once(text, alg):
        calls["n"] += 1
        if calls["n"] == 1:
            raise BrokenProcessPool("worker died")
        return real(text, alg)

    monkeypatch.setattr(protocol, "compute_schedule_payload", dies_once)

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            got = await engine.submit(inst, "HEFT")
            for field in ("makespan", "placements", "num_duplicates"):
                assert json.dumps(got[field]) == json.dumps(expected[field])
        finally:
            await engine.stop()

    _run(scenario())


def test_coalesced_waiters_survive_worker_death(monkeypatch):
    real = protocol.compute_schedule_payload
    calls = {"n": 0}

    def dies_once(text, alg):
        calls["n"] += 1
        time.sleep(0.05)  # widen the coalescing window
        if calls["n"] == 1:
            raise BrokenProcessPool("worker died")
        return real(text, alg)

    monkeypatch.setattr(protocol, "compute_schedule_payload", dies_once)

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            inst = _instance()
            results = await asyncio.gather(
                *[engine.submit(inst, "HEFT", timeout=30.0) for _ in range(4)]
            )
            assert len({r["makespan"] for r in results}) == 1
            assert all(r["placements"] for r in results)
            assert engine.stats().respawns == 1
        finally:
            await engine.stop()

    _run(scenario())


def test_respawn_budget_exhausted_closes_engine_cleanly(monkeypatch):
    def always_broken(text, alg):
        raise BrokenProcessPool("worker keeps dying")

    monkeypatch.setattr(protocol, "compute_schedule_payload", always_broken)

    async def scenario():
        engine = SchedulingEngine(
            EngineConfig(workers=0, max_respawns=2, respawn_window=60.0)
        )
        await engine.start()
        try:
            with pytest.raises(ServiceClosedError, match="respawn budget exhausted"):
                await engine.submit(_instance(), "HEFT")
            stats = engine.stats()
            assert stats.respawns == 2, "budget must be spent before giving up"
            assert engine.draining, "an unrecoverable engine must close"
            # New work is refused with the same clean error, not WorkerError.
            with pytest.raises(ServiceClosedError):
                await engine.submit(_instance(1), "HEFT")
        finally:
            await engine.stop(drain=False)

    _run(scenario())


def test_respawn_window_slides(monkeypatch):
    """Old respawns age out of the window, so a long-lived engine can
    absorb occasional worker deaths indefinitely."""
    real = protocol.compute_schedule_payload
    calls = {"n": 0}

    def dies_every_other(text, alg):
        calls["n"] += 1
        if calls["n"] % 2 == 1:
            raise BrokenProcessPool("worker died")
        return real(text, alg)

    monkeypatch.setattr(protocol, "compute_schedule_payload", dies_every_other)

    async def scenario():
        engine = SchedulingEngine(
            EngineConfig(workers=0, max_respawns=1, respawn_window=0.1)
        )
        await engine.start()
        try:
            a = await engine.submit(_instance(1), "HEFT")
            await asyncio.sleep(0.15)  # let the first respawn age out
            b = await engine.submit(_instance(2), "HEFT")
            assert a["placements"] and b["placements"]
            assert engine.stats().respawns == 2
            assert not engine.draining
        finally:
            await engine.stop()

    _run(scenario())


# ----------------------------------------------------------------------
# deadline propagation
# ----------------------------------------------------------------------
def test_expired_deadline_is_immediate_504():
    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            past = Deadline(time.monotonic() - 1.0)
            with pytest.raises(ServiceTimeoutError, match="deadline expired"):
                await engine.submit(_instance(), "HEFT", deadline=past)
            stats = engine.stats()
            assert stats.timeouts == 1
            assert stats.queue_depth == 0, "expired requests must not occupy the queue"
        finally:
            await engine.stop()

    _run(scenario())


def test_deadline_shrinks_effective_timeout(monkeypatch):
    def slow(text, alg):
        time.sleep(0.5)
        return {"alg": alg, "makespan": 0.0, "placements": []}

    monkeypatch.setattr(protocol, "compute_schedule_payload", slow)

    async def scenario():
        # default_timeout is generous; the deadline must win.
        engine = SchedulingEngine(EngineConfig(workers=0, default_timeout=30.0))
        await engine.start()
        try:
            t0 = time.monotonic()
            with pytest.raises(ServiceTimeoutError):
                await engine.submit(_instance(), "HEFT",
                                    deadline=Deadline.after(0.1))
            elapsed = time.monotonic() - t0
            assert elapsed < 5.0, (
                f"deadline of 0.1s must cut the 30s default timeout, waited {elapsed:.2f}s"
            )
        finally:
            await engine.stop()

    _run(scenario())


def test_cache_hit_still_answers_past_deadline():
    """A hit costs nothing, so even an expired request gets its answer."""

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            inst = _instance()
            await engine.submit(inst, "HEFT")
            past = Deadline(time.monotonic() - 1.0)
            hit = await engine.submit(inst, "HEFT", deadline=past)
            assert hit["cache_hit"] is True
        finally:
            await engine.stop()

    _run(scenario())


def test_deadline_accepts_raw_monotonic_float(monkeypatch):
    def slow(text, alg):
        time.sleep(0.5)
        return {"alg": alg, "makespan": 0.0, "placements": []}

    monkeypatch.setattr(protocol, "compute_schedule_payload", slow)

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0, default_timeout=30.0))
        await engine.start()
        try:
            with pytest.raises(ServiceTimeoutError):
                await engine.submit(_instance(), "HEFT",
                                    deadline=time.monotonic() + 0.1)
        finally:
            await engine.stop()

    _run(scenario())


def test_retry_after_hint_bounds():
    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            assert 0.05 <= engine.retry_after_hint() <= 2.0
        finally:
            await engine.stop()

    _run(scenario())


# ----------------------------------------------------------------------
# shutdown regressions (satellites)
# ----------------------------------------------------------------------
def test_stop_with_full_queue_does_not_deadlock(monkeypatch):
    """Regression: stop used to signal the dispatcher with an in-band
    ``None`` queue sentinel; a full bounded queue could refuse the
    (re-)enqueue, crashing the dispatcher and deadlocking shutdown.
    The stop signal is now a dedicated event, so a brim-full queue
    shuts down exactly like an empty one."""

    def slow(text, alg):
        time.sleep(0.3)
        return {"alg": alg, "makespan": 0.0, "placements": []}

    monkeypatch.setattr(protocol, "compute_schedule_payload", slow)

    async def scenario():
        engine = SchedulingEngine(
            EngineConfig(workers=0, queue_depth=2, batch_size=1, default_timeout=30.0)
        )
        await engine.start()
        # Fill every stage: one job running (holding the only dispatch
        # slot), one held by the dispatcher waiting for that slot, and
        # then enough to leave the bounded queue itself at capacity.
        waiters = [asyncio.create_task(engine.submit(_instance(0), "HEFT"))]
        await asyncio.sleep(0.05)
        waiters.append(asyncio.create_task(engine.submit(_instance(1), "HEFT")))
        await asyncio.sleep(0.02)
        waiters += [
            asyncio.create_task(engine.submit(_instance(seed), "HEFT"))
            for seed in (2, 3)
        ]
        await asyncio.sleep(0.02)
        assert engine._queue.full(), "scenario must stop an engine at queue capacity"
        t0 = time.monotonic()
        await engine.stop(drain=False)
        assert time.monotonic() - t0 < 4.0, "stop must not hang on a full queue"
        done = await asyncio.gather(*waiters, return_exceptions=True)
        assert all(
            isinstance(r, (ServiceClosedError, dict, asyncio.CancelledError))
            for r in done
        )
        assert any(isinstance(r, ServiceClosedError) for r in done)
        # The engine restarts cleanly after the hard stop.
        await engine.start()
        try:
            payload = await engine.submit(_instance(9), "HEFT")
            assert payload["alg"] == "HEFT"
        finally:
            await engine.stop()

    _run(scenario())


def test_graceful_drain_with_queued_backlog(monkeypatch):
    real = protocol.compute_schedule_payload

    def slow(text, alg):
        time.sleep(0.05)
        return real(text, alg)

    monkeypatch.setattr(protocol, "compute_schedule_payload", slow)

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0, queue_depth=8, batch_size=2))
        await engine.start()
        waiters = [
            asyncio.create_task(engine.submit(_instance(seed), "HEFT"))
            for seed in range(4)
        ]
        await asyncio.sleep(0.02)
        await engine.stop(drain=True)
        results = await asyncio.gather(*waiters)
        assert all(isinstance(r, dict) and r["placements"] for r in results)

    _run(scenario())


def test_slot_released_when_job_task_cancelled_before_start():
    """Regression: the dispatch slot used to be released in
    ``_run_job``'s ``finally``; a task cancelled before its first await
    never enters the coroutine body, so the slot leaked and the engine
    permanently lost one unit of dispatch concurrency.  The dispatcher
    now owns acquire *and* release (done-callback), which fires for
    cancelled-before-start tasks too."""

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            job = engine_mod._Job(
                "key", "{}", "HEFT", asyncio.get_running_loop().create_future()
            )
            # Exactly what the dispatcher does per batch item:
            await engine._slots.acquire()
            task = asyncio.create_task(engine._run_job(job))
            engine._running.add(task)
            task.add_done_callback(engine._job_task_done)
            # Cancelled before the event loop ever runs the coroutine.
            task.cancel()
            await asyncio.gather(task, return_exceptions=True)
            assert engine._slots._value == 1, "cancelled-before-start task leaked its slot"
        finally:
            await engine.stop(drain=False)

    _run(scenario())


def test_slot_count_restored_after_hard_stop_under_load(monkeypatch):
    def slow(text, alg):
        time.sleep(0.2)
        return {"alg": alg, "makespan": 0.0, "placements": []}

    monkeypatch.setattr(protocol, "compute_schedule_payload", slow)

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0, queue_depth=16))
        await engine.start()
        waiters = [
            asyncio.create_task(engine.submit(_instance(seed), "HEFT"))
            for seed in range(6)
        ]
        await asyncio.sleep(0.05)
        await engine.stop(drain=False)
        await asyncio.gather(*waiters, return_exceptions=True)
        assert engine._slots._value == 1, "hard stop must restore every dispatch slot"

    _run(scenario())


# ----------------------------------------------------------------------
# Deadline unit behaviour
# ----------------------------------------------------------------------
def test_deadline_arithmetic_with_injected_clock():
    now = {"t": 100.0}
    clock = lambda: now["t"]  # noqa: E731
    d = Deadline.after(5.0, clock=clock)
    assert d.remaining(clock) == pytest.approx(5.0)
    assert not d.expired(clock)
    now["t"] = 104.0
    assert d.remaining(clock) == pytest.approx(1.0)
    now["t"] = 105.5
    assert d.expired(clock)
    assert d.remaining(clock) == pytest.approx(-0.5)


def test_deadline_rejects_non_positive_horizon():
    with pytest.raises(ValueError):
        Deadline.after(0.0)
    with pytest.raises(ValueError):
        Deadline.after(-1.0)


def test_engine_config_resilience_validation():
    with pytest.raises(ValueError):
        EngineConfig(max_respawns=-1)
    with pytest.raises(ValueError):
        EngineConfig(respawn_window=0.0)
