"""Tests for the ASCII plot renderer."""

import pytest

from repro.utils.plot import ascii_plot


class TestAsciiPlot:
    def test_basic_structure(self):
        out = ascii_plot([1, 2, 3], {"s": [1.0, 2.0, 3.0]}, width=20, height=6)
        lines = out.splitlines()
        assert any("legend" in line for line in lines)
        assert "*" in out  # first glyph

    def test_title(self):
        out = ascii_plot([1, 2], {"s": [1.0, 2.0]}, title="My Fig")
        assert out.splitlines()[0] == "My Fig"

    def test_extremes_on_axis_labels(self):
        out = ascii_plot([0, 10], {"s": [5.0, 15.0]})
        assert "15" in out and "5" in out

    def test_two_series_two_glyphs(self):
        out = ascii_plot([1, 2], {"a": [1.0, 2.0], "b": [2.0, 1.0]})
        assert "*" in out and "o" in out
        assert "* a" in out and "o b" in out

    def test_constant_series_no_crash(self):
        out = ascii_plot([1, 2, 3], {"s": [2.0, 2.0, 2.0]})
        assert "legend" in out

    def test_single_point_degrades_gracefully(self):
        out = ascii_plot([1], {"s": [1.0]})
        assert "not enough data" in out

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {"s": [1.0]})

    def test_too_small_canvas(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], {"s": [1.0, 2.0]}, width=2, height=2)

    def test_sweep_result_plot(self):
        from repro.bench.runner import SweepResult

        res = SweepResult(x_name="x", x_values=[1, 2, 3], metric="slr")
        res.series = {"HEFT": [1.1, 1.2, 1.3]}
        out = res.plot(title="sweep")
        assert "legend" in out and "sweep" in out
