"""Arrival processes: Poisson streams, trace replay, JSON round trip."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.arrivals import (
    Arrival,
    PoissonArrivals,
    TraceArrivals,
    trace_from_json,
    trace_to_json,
)

NAMES = ["small", "wide", "deep"]


class TestPoisson:
    def test_realize_shape(self):
        arr = PoissonArrivals(rate=0.5, jobs=50, seed=1).realize(NAMES)
        assert len(arr) == 50
        assert all(a.template in NAMES for a in arr)
        assert [a.job_id for a in arr] == [f"j{i:06d}" for i in range(50)]

    def test_times_strictly_increasing(self):
        arr = PoissonArrivals(rate=2.0, jobs=200, seed=3).realize(NAMES)
        assert all(b.time > a.time for a, b in zip(arr, arr[1:]))

    def test_same_seed_same_stream(self):
        a = PoissonArrivals(rate=1.0, jobs=30, seed=9).realize(NAMES)
        b = PoissonArrivals(rate=1.0, jobs=30, seed=9).realize(NAMES)
        assert a == b

    def test_different_seeds_differ(self):
        a = PoissonArrivals(rate=1.0, jobs=30, seed=9).realize(NAMES)
        b = PoissonArrivals(rate=1.0, jobs=30, seed=10).realize(NAMES)
        assert a != b

    def test_template_input_order_irrelevant(self):
        a = PoissonArrivals(rate=1.0, jobs=40, seed=4).realize(NAMES)
        b = PoissonArrivals(rate=1.0, jobs=40, seed=4).realize(list(reversed(NAMES)))
        assert a == b

    def test_times_independent_of_catalogue_size(self):
        # Separate time/pick streams: adding a template re-draws picks
        # but never perturbs the realized arrival times.
        a = PoissonArrivals(rate=1.0, jobs=40, seed=4).realize(NAMES)
        b = PoissonArrivals(rate=1.0, jobs=40, seed=4).realize(NAMES + ["extra"])
        assert [x.time for x in a] == [x.time for x in b]

    def test_mean_gap_tracks_rate(self):
        arr = PoissonArrivals(rate=0.25, jobs=2000, seed=0).realize(NAMES)
        mean_gap = arr[-1].time / len(arr)
        assert 3.5 < mean_gap < 4.5  # 1/rate = 4

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate=0.0, jobs=5)
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate=1.0, jobs=0)
        with pytest.raises(ConfigurationError):
            PoissonArrivals(rate=1.0, jobs=5).realize([])


class TestTrace:
    def test_sorted_stable(self):
        tr = TraceArrivals([(2.0, "b"), (1.0, "a"), (2.0, "a")])
        arr = tr.realize(["a", "b"])
        assert [(a.time, a.template) for a in arr] == [
            (1.0, "a"), (2.0, "b"), (2.0, "a"),
        ]
        assert [a.job_id for a in arr] == ["j000000", "j000001", "j000002"]

    def test_unknown_template_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceArrivals([(1.0, "ghost")]).realize(["a"])

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceArrivals([])

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceArrivals([(-1.0, "a")]).realize(["a"])


class TestJsonRoundTrip:
    def test_bit_exact(self):
        arr = PoissonArrivals(rate=0.37, jobs=100, seed=7).realize(NAMES)
        replayed = trace_from_json(trace_to_json(arr)).realize(NAMES)
        assert replayed == arr  # includes float-exact times

    def test_canonical_text(self):
        arr = PoissonArrivals(rate=1.0, jobs=5, seed=0).realize(NAMES)
        assert trace_to_json(arr) == trace_to_json(list(arr))

    def test_malformed_rejected(self):
        with pytest.raises(ConfigurationError):
            trace_from_json("{}")
        with pytest.raises(ConfigurationError):
            trace_from_json('{"arrivals": [{"time": "xyz", "template": "a"}]}')


def test_arrival_negative_time_rejected():
    with pytest.raises(ConfigurationError):
        Arrival(time=-0.5, template="a", job_id="j000000")
