"""Unified observability layer: hierarchical spans, counters, exporters.

One :class:`Tracer` records everything the scheduling pipeline does —
ranking and placement phases, compiled-core decodes, sweep replications
(including those run in pool workers), service requests — as a tree of
timed *spans* plus aggregate *counters* and *gauges*.  The module-level
default is a :class:`NullTracer` whose operations are no-ops, so the
hot paths stay hot unless a caller opts in with :func:`set_tracer` or
:func:`use_tracer` (the overhead of the no-op default is benchmarked by
``benchmarks/bench_obs.py``).

Exporters (:mod:`repro.obs.export`) turn a recorded trace into JSONL,
Chrome ``trace_event`` JSON (loadable in ``chrome://tracing`` and
Perfetto) or Prometheus-style text that unifies with the service
metrics exposition.
"""

from repro.obs.export import (
    render_trace,
    span_tree,
    to_chrome,
    to_jsonl,
    to_prometheus,
    trace_format_for_path,
    validate_trace,
    write_trace,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "render_trace",
    "span_tree",
    "to_chrome",
    "to_jsonl",
    "to_prometheus",
    "trace_format_for_path",
    "validate_trace",
    "write_trace",
]
