"""Tests for the PEFT scheduler and its optimistic cost table."""

import pytest

from repro.dag.generators import random_dag
from repro.instance import homogeneous_instance, make_instance
from repro.schedule.validation import validate
from repro.schedulers.peft import PEFT


class TestOptimisticCostTable:
    def test_exit_rows_zero(self, topcuoglu_instance):
        oct_table = PEFT().optimistic_cost_table(topcuoglu_instance)
        for p in topcuoglu_instance.machine.proc_ids():
            assert oct_table[10][p] == 0.0

    def test_nonnegative_everywhere(self, topcuoglu_instance):
        oct_table = PEFT().optimistic_cost_table(topcuoglu_instance)
        for row in oct_table.values():
            assert all(v >= 0.0 for v in row.values())

    def test_chain_recursion(self):
        # Chain a -> b with homogeneous costs: OCT(a, p) must equal
        # w(b) (+ comm only if b's best processor differs, which it
        # doesn't under homogeneity because w=p is free of comm).
        from repro.dag.graph import TaskDAG

        dag = TaskDAG.from_edges([("a", "b", 6.0)], costs={"a": 2.0, "b": 3.0})
        inst = homogeneous_instance(dag, num_procs=2, bandwidth=1.0)
        oct_table = PEFT().optimistic_cost_table(inst)
        for p in (0, 1):
            assert oct_table["a"][p] == pytest.approx(3.0)  # run b on p itself
        assert oct_table["b"][0] == 0.0

    def test_parent_at_least_child_best(self, topcuoglu_instance):
        # OCT(t, p) >= min over w of OCT(c, w) + w(c, w) for each child c.
        oct_table = PEFT().optimistic_cost_table(topcuoglu_instance)
        inst = topcuoglu_instance
        for t in inst.dag.tasks():
            for c in inst.dag.successors(t):
                floor = min(
                    oct_table[c][w] + inst.exec_time(c, w)
                    for w in inst.machine.proc_ids()
                )
                for p in inst.machine.proc_ids():
                    assert oct_table[t][p] >= floor - 1e-9


class TestPeftScheduling:
    @pytest.mark.parametrize("seed", range(4))
    def test_feasible(self, seed):
        dag = random_dag(40, seed=seed)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=seed)
        s = PEFT().schedule(inst)
        validate(s, inst)
        assert len(s) == 40

    def test_topcuoglu_sanity(self, topcuoglu_instance):
        s = PEFT().schedule(topcuoglu_instance)
        validate(s, topcuoglu_instance)
        assert s.makespan <= 120.0  # within 1.5x of HEFT's 80

    def test_deterministic(self, topcuoglu_instance):
        a = PEFT().schedule(topcuoglu_instance)
        b = PEFT().schedule(topcuoglu_instance)
        assert a.assignment() == b.assignment()

    def test_homogeneous(self, diamond_dag):
        inst = homogeneous_instance(diamond_dag, num_procs=2)
        validate(PEFT().schedule(inst), inst)

    def test_single_task(self):
        from repro.dag.graph import TaskDAG
        from repro.dag.task import Task

        dag = TaskDAG()
        dag.add_task(Task("x", cost=3.0))
        inst = homogeneous_instance(dag, num_procs=2)
        assert PEFT().schedule(inst).makespan == pytest.approx(3.0)

    def test_competitive_with_heft(self):
        # Across a small suite PEFT must stay within 15% of HEFT on
        # average (they trade wins instance by instance).
        import numpy as np
        from repro.schedulers.heft import HEFT

        ratios = []
        for seed in range(6):
            dag = random_dag(60, seed=seed)
            inst = make_instance(dag, num_procs=4, heterogeneity=0.75, seed=seed)
            ratios.append(
                PEFT().schedule(inst).makespan / HEFT().schedule(inst).makespan
            )
        assert float(np.mean(ratios)) < 1.15
