"""Tests for the named benchmark suites."""

import pytest

from repro.dag.suites import SUITES, application_suite, mixed_suite, random_suite


class TestApplicationSuite:
    def test_all_kernels_present(self):
        suite = application_suite()
        assert {"gauss", "fft", "laplace", "cholesky", "montage"} <= set(suite)

    def test_all_valid(self):
        for name, dag in application_suite().items():
            dag.validate()
            assert dag.num_tasks > 0, name

    def test_scale_grows(self):
        small = application_suite(scale=1)
        big = application_suite(scale=2)
        for name in small:
            assert big[name].num_tasks > small[name].num_tasks, name

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            application_suite(scale=0)

    def test_deterministic(self):
        a = application_suite()
        b = application_suite()
        for name in a:
            assert list(a[name].edges()) == list(b[name].edges())


class TestRandomSuite:
    def test_count_and_size(self):
        suite = random_suite(count=5, num_tasks=30, seed=1)
        assert len(suite) == 5
        assert all(d.num_tasks == 30 for d in suite)

    def test_deterministic(self):
        a = random_suite(count=3, seed=2)
        b = random_suite(count=3, seed=2)
        for x, y in zip(a, b):
            assert list(x.edges()) == list(y.edges())

    def test_instances_differ(self):
        suite = random_suite(count=3, seed=3)
        assert set(suite[0].edges()) != set(suite[1].edges())

    def test_ccr_respected(self):
        for dag in random_suite(count=2, ccr=4.0, seed=4):
            assert dag.ccr() == pytest.approx(4.0)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            random_suite(count=-1)


class TestMixedSuiteAndRegistry:
    def test_mixed_contains_random_and_apps(self):
        suite = mixed_suite(seed=0)
        assert "random-small" in suite and "gauss" in suite
        for dag in suite.values():
            dag.validate()

    def test_registry_names(self):
        assert set(SUITES) == {"application", "random", "mixed"}
        for factory in SUITES.values():
            assert callable(factory)
