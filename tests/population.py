"""The shared differential-test instance corpus.

14 seeds x 4 families = 56 seeded instances covering heterogeneous
machines (all three consistency classes) and homogeneous ones.  Both
differential suites — the vectorized kernel layer
(``tests/core/test_vectorized_equivalence.py``) and the compiled
flat-array decoder (``tests/core/test_compiled_decode.py``) — check
behaviour preservation over this same population.
"""

from __future__ import annotations

import numpy as np

from repro.bench import workloads as W
from repro.dag.generators import random_dag
from repro.instance import make_instance

SEEDS = range(14)


def _heterogeneous(seed: int):
    rng = np.random.default_rng(10_000 + seed)
    return W.random_instance(rng, num_tasks=25, num_procs=8)


def _consistent(seed: int):
    dag = random_dag(20, ccr=5.0, seed=20_000 + seed)
    return make_instance(
        dag, num_procs=5, heterogeneity=1.0, consistency="consistent", seed=seed
    )


def _partially_consistent(seed: int):
    dag = random_dag(18, ccr=0.5, seed=30_000 + seed)
    return make_instance(
        dag, num_procs=3, heterogeneity=0.75, consistency="partially-consistent", seed=seed
    )


def _homogeneous(seed: int):
    rng = np.random.default_rng(40_000 + seed)
    return W.homogeneous_random_instance(rng, num_tasks=22, num_procs=4)


FAMILIES = [
    ("het", _heterogeneous),
    ("consistent", _consistent),
    ("partial", _partially_consistent),
    ("homog", _homogeneous),
]


def build_population():
    """``(label, instance)`` pairs of the full 56-instance corpus."""
    return [
        (f"{family}-{seed}", build(seed)) for family, build in FAMILIES for seed in SEEDS
    ]


def partially_consistent_instance(seed: int):
    """One partially-consistent family member (used by a legacy test)."""
    return _partially_consistent(seed)


# ----------------------------------------------------------------------
# deadline-annotated corpus (resilient/deadline suites)
# ----------------------------------------------------------------------
#: Deadline as a multiple of the HEFT makespan on the same instance:
#: ``loose`` leaves ample slack, ``tight`` barely clears the fault-free
#: schedule, ``infeasible`` cannot be met by construction.
DEADLINE_TIGHTNESS = {"tight": 1.05, "loose": 2.5, "infeasible": 0.5}


def _fork_join(seed: int, width: int = 4, stages: int = 2):
    from repro.dag.generators import fork_join_dag

    dag = fork_join_dag(
        width=width, stages=stages, chain_length=2, jitter=0.3,
        seed=50_000 + seed, name=f"forkjoin-{seed}",
    )
    return make_instance(
        dag, num_procs=4, heterogeneity=0.5, seed=seed, name=f"forkjoin-{seed}"
    )


def _deadline_bases():
    """Base instances (no deadline yet) for the deadline corpus: small
    members of the heterogeneous families plus fork-join shapes."""
    return [
        ("het", _heterogeneous(0)),
        ("partial", _partially_consistent(1)),
        ("homog", _homogeneous(2)),
        ("forkjoin-narrow", _fork_join(0, width=3, stages=1)),
        ("forkjoin-wide", _fork_join(1, width=6, stages=2)),
    ]


def build_deadline_population():
    """``(label, instance)`` pairs carrying deadlines at all three
    tightness levels, anchored to each instance's HEFT makespan so the
    tight/loose/infeasible split is meaningful regardless of family."""
    from repro.schedulers.registry import get_scheduler

    heft = get_scheduler("HEFT")
    out = []
    for family, base in _deadline_bases():
        ref = heft.schedule(base).makespan
        for level, factor in sorted(DEADLINE_TIGHTNESS.items()):
            out.append((
                f"{family}-{level}", base.with_deadline(factor * ref)
            ))
    return out
