"""Property: tracing is observationally free.

Turning the tracer on must not change a single placement of a single
scheduler — the observability layer reads timestamps and counts events
but never participates in any scheduling decision.  Checked for every
registered scheduler over hypothesis-drawn seeded instances (tiny, so
the exact branch-and-bound scheduler also terminates), together with
well-formedness of every produced span tree.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import workloads as W
from repro.obs import Tracer, use_tracer, validate_trace
from repro.schedulers.registry import all_scheduler_names, get_scheduler
from repro.utils.rng import as_generator

SCHEDULERS = all_scheduler_names()


def _tiny_instance(seed: int):
    return W.random_instance(as_generator(seed), num_tasks=8, num_procs=3)


def _placements(schedule):
    return sorted(
        (str(p.task), str(p.proc), p.start, p.end, p.duplicate)
        for p in schedule.all_placements()
    )


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    alg=st.sampled_from(SCHEDULERS),
)
@settings(max_examples=30, deadline=None)
def test_tracing_on_equals_tracing_off(seed: int, alg: str):
    instance = _tiny_instance(seed)
    baseline = get_scheduler(alg).schedule(instance)
    tracer = Tracer()
    with use_tracer(tracer):
        traced = get_scheduler(alg).schedule(instance)
    assert traced.makespan == baseline.makespan  # exact float equality
    assert _placements(traced) == _placements(baseline)
    assert validate_trace(tracer) == []


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_span_trees_are_well_formed(seed: int):
    """Parents contain children, durations non-negative, ids unique —
    across a mixed run exercising list, improved and compiled paths."""
    instance = _tiny_instance(seed)
    tracer = Tracer()
    with use_tracer(tracer):
        for alg in ("HEFT", "CPOP", "IMP", "GA"):
            get_scheduler(alg).schedule(instance)
    spans = tracer.spans()
    assert spans, "instrumented schedulers recorded no spans"
    assert validate_trace(tracer) == []
    ids = [s["id"] for s in spans]
    assert len(ids) == len(set(ids))
    known = set(ids)
    for span in spans:
        assert span["parent"] is None or span["parent"] in known
        assert span["t1"] >= span["t0"]
