"""HCPT — Heterogeneous Critical Parent Trees (Hagras & Janecek, 2003).

A low-complexity listing heuristic: tasks with zero slack (average
earliest start == average latest start) form the critical path; the
listing phase walks each critical node's unlisted-parent tree so parents
are always listed first, then placement is insertion-based EFT.
"""

from __future__ import annotations

from repro.instance import Instance
from repro.schedulers.base import ListScheduler
from repro.schedulers.ranking import RankAggregation, alap_times, est_times
from repro.types import TaskId


class HCPT(ListScheduler):
    """Heterogeneous Critical Parent Trees scheduler."""

    insertion = True
    compiled_policy = "eft"

    def __init__(self, agg: RankAggregation = "mean") -> None:
        self.agg = agg
        self.name = "HCPT" if agg == "mean" else f"HCPT-{agg}"

    def priority_order(self, instance: Instance) -> list[TaskId]:
        dag = instance.dag
        aest = est_times(instance, self.agg)
        alst = alap_times(instance, self.agg)
        order = dag.topological_order()
        pos = {t: i for i, t in enumerate(order)}

        slack_tol = 1e-9 * (1.0 + max(alst.values(), default=0.0))
        critical = [t for t in dag.tasks() if abs(alst[t] - aest[t]) <= slack_tol]
        if not critical:
            # Degenerate numerics: fall back to the minimum-slack task.
            critical = sorted(dag.tasks(), key=lambda t: (alst[t] - aest[t], pos[t]))[:1]
        # Stack initialised with critical tasks, smallest ALST on top.
        stack = sorted(critical, key=lambda t: (-alst[t], -pos[t]))

        listed: list[TaskId] = []
        listed_set: set[TaskId] = set()
        while stack:
            top = stack[-1]
            unlisted_parents = [p for p in dag.predecessors(top) if p not in listed_set]
            if unlisted_parents:
                # Push the most urgent (smallest ALST) unlisted parent.
                parent = min(unlisted_parents, key=lambda p: (alst[p], pos[p]))
                stack.append(parent)
            else:
                stack.pop()
                if top not in listed_set:
                    listed.append(top)
                    listed_set.add(top)

        # Non-critical leftovers (tasks not on any critical parent tree,
        # e.g. descendants of the CP) follow in urgency order.
        for t in sorted(dag.tasks(), key=lambda t: (alst[t], pos[t])):
            if t not in listed_set:
                # Parents may also be unlisted; emit them first.
                chain: list[TaskId] = []
                stack2 = [t]
                while stack2:
                    u = stack2[-1]
                    missing = [p for p in dag.predecessors(u) if p not in listed_set]
                    if missing:
                        stack2.append(min(missing, key=lambda p: (alst[p], pos[p])))
                    else:
                        stack2.pop()
                        if u not in listed_set:
                            chain.append(u)
                            listed_set.add(u)
                listed.extend(chain)
        return listed
