"""E4 — Average SLR vs heterogeneity factor beta.

Expected shape: the improved scheduler dominates HEFT at every beta; at
beta -> 0 (homogeneous) all rank variants coincide, so the margin there
comes from lookahead/duplication/refinement only.
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e4_data
from repro.schedulers.registry import get_scheduler

from conftest import series_mean


def test_e4_shape(quick):
    res = e4_data(quick)
    print("\n" + res.table("E4: average SLR vs heterogeneity"))
    assert series_mean(res, "IMP") <= series_mean(res, "HEFT") + 1e-9
    # Per-point dominance over HEFT (IMP's search is a superset).
    for i, _ in enumerate(res.x_values):
        assert res.series["IMP"][i] <= res.series["HEFT"][i] + 1e-9


def test_e4_benchmark_high_beta(benchmark):
    rng = np.random.default_rng(204)
    inst = W.random_instance(rng, num_tasks=100, heterogeneity=1.5)
    result = benchmark(get_scheduler("IMP").schedule, inst)
    assert result.makespan > 0
