"""Small shared utilities (RNG handling, statistics, table formatting)."""

from repro.utils.rng import as_generator, spawn_children
from repro.utils.stats import (
    confidence_interval95,
    describe,
    geometric_mean,
    mean,
    median,
    stdev,
)
from repro.utils.tables import format_series, format_table

__all__ = [
    "as_generator",
    "spawn_children",
    "confidence_interval95",
    "describe",
    "geometric_mean",
    "mean",
    "median",
    "stdev",
    "format_series",
    "format_table",
]
