#!/usr/bin/env python3
"""Serving quickstart: run the scheduling service and talk to it.

Starts an in-process daemon (ephemeral port), submits a stream of
requests through the async :class:`~repro.service.ServiceClient`,
shows the content-addressed cache and request coalescing at work, and
reads the built-in metrics — all the moving parts of

    repro-sched serve ...   /   repro-sched submit ...

in one script, with no sockets left behind.

Run:  PYTHONPATH=src python examples/service_quickstart.py
"""

import asyncio

from repro.dag.generators import gaussian_elimination_dag, random_dag
from repro.instance import make_instance
from repro.service import (
    EngineConfig,
    ScheduleServer,
    SchedulingEngine,
    ServiceClient,
)


async def main() -> None:
    # ------------------------------------------------------------------
    # 1. Start the daemon: 2 worker processes, a 64-entry schedule
    #    cache, a bounded queue.  port=0 binds an ephemeral port.
    # ------------------------------------------------------------------
    engine = SchedulingEngine(EngineConfig(workers=2, cache_size=64, queue_depth=32))
    server = ScheduleServer(engine, port=0)
    await server.start()
    client = ServiceClient(port=server.port)
    print(f"service up on 127.0.0.1:{server.port}\n")

    # ------------------------------------------------------------------
    # 2. One request = one instance + one scheduler name.  The first
    #    submission computes in a worker process; the repeat is served
    #    from the cache, bit-identical and ~10-100x faster.
    # ------------------------------------------------------------------
    instance = make_instance(gaussian_elimination_dag(6), num_procs=4, seed=42)
    cold = await client.schedule(instance, alg="IMP")
    warm = await client.schedule(instance, alg="IMP")
    print(f"cold: makespan={cold.makespan:8.2f}  hit={cold.cache_hit!s:5}  "
          f"{cold.server_ms:7.2f} ms   fingerprint={cold.fingerprint[:12]}...")
    print(f"warm: makespan={warm.makespan:8.2f}  hit={warm.cache_hit!s:5}  "
          f"{warm.server_ms:7.2f} ms   (identical placements: "
          f"{cold.placements == warm.placements})\n")

    # ------------------------------------------------------------------
    # 3. A concurrent burst: distinct instances fan out across the
    #    worker pool; identical in-flight requests coalesce onto one
    #    computation.
    # ------------------------------------------------------------------
    burst = [
        make_instance(random_dag(num_tasks=40, seed=seed), num_procs=4, seed=seed)
        for seed in range(6)
    ]
    burst += [burst[0], burst[0]]  # two duplicates submitted in the same instant
    results = await asyncio.gather(*[client.schedule(i, alg="HEFT") for i in burst])
    print(f"burst of {len(burst)}: makespans "
          f"{[round(r.makespan, 1) for r in results]}")

    # ------------------------------------------------------------------
    # 4. Built-in metrics: counters and latency percentiles, as a
    #    snapshot (GET /v1/stats) or Prometheus text (GET /metrics).
    # ------------------------------------------------------------------
    stats = await client.stats()
    print(f"\nrequests={stats.requests}  completed={stats.completed}  "
          f"cache {stats.cache_hits}/{stats.cache_hits + stats.cache_misses} hits  "
          f"coalesced={stats.coalesced}")
    print(f"latency p50={stats.p50_ms:.2f} ms  p95={stats.p95_ms:.2f} ms  "
          f"p99={stats.p99_ms:.2f} ms")
    print("\nGET /metrics excerpt:")
    for line in (await client.metrics_text()).splitlines()[:6]:
        print(f"  {line}")

    # ------------------------------------------------------------------
    # 5. A result rebuilds into a full Schedule for local inspection.
    # ------------------------------------------------------------------
    print()
    print(cold.to_schedule(instance.machine).gantt())

    await server.stop()  # graceful: drains queue + pool, then exits
    print("\nservice drained and stopped")


if __name__ == "__main__":
    asyncio.run(main())
