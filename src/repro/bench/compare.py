"""One-call scheduler comparison for downstream users.

``compare_schedulers`` runs a set of schedulers (built-in names and/or
custom :class:`~repro.schedulers.base.Scheduler` objects) over a DAG
suite on a declarative machine spec, validates everything, and returns a
structured result with a ready-to-print report.  This is the API a user
adopting the library for their own heuristic starts from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence, Union

import numpy as np

from repro.dag.graph import TaskDAG
from repro.exceptions import ConfigurationError
from repro.instance import Instance, make_instance
from repro.schedule.metrics import pairwise_comparison, slr
from repro.schedule.validation import validate
from repro.schedulers.base import Scheduler
from repro.schedulers.registry import get_scheduler
from repro.utils.rng import SeedLike, spawn_children
from repro.utils.tables import format_table

SchedulerSpec = Union[str, Scheduler]


@dataclass
class ComparisonResult:
    """Outcome of one comparison run."""

    scheduler_names: list[str]
    instance_names: list[str]
    makespans: dict[str, list[float]]
    slrs: dict[str, list[float]]
    pairwise: dict[tuple[str, str], tuple[float, float, float]] = field(default_factory=dict)

    def mean_slr(self, name: str) -> float:
        return float(np.mean(self.slrs[name]))

    def winner(self) -> str:
        """Scheduler with the lowest mean SLR."""
        return min(self.scheduler_names, key=self.mean_slr)

    def report(self) -> str:
        rows = []
        for name in sorted(self.scheduler_names, key=self.mean_slr):
            wins = sum(
                all(
                    self.makespans[name][i] <= self.makespans[o][i] + 1e-9
                    for o in self.scheduler_names
                )
                for i in range(len(self.instance_names))
            )
            rows.append(
                [
                    name,
                    f"{self.mean_slr(name):.4f}",
                    f"{float(np.mean(self.makespans[name])):.4g}",
                    f"{wins}/{len(self.instance_names)}",
                ]
            )
        return format_table(
            ["scheduler", "mean SLR", "mean makespan", "best-or-tied"],
            rows,
            title=f"comparison over {len(self.instance_names)} instances",
        )


def _resolve(spec: SchedulerSpec) -> Scheduler:
    if isinstance(spec, Scheduler):
        return spec
    return get_scheduler(spec)


def compare_schedulers(
    schedulers: Sequence[SchedulerSpec],
    dags: Union[Sequence[TaskDAG], Mapping[str, TaskDAG]],
    num_procs: int = 8,
    heterogeneity: float = 0.5,
    etc_draws: int = 3,
    seed: SeedLike = 0,
    check: bool = True,
) -> ComparisonResult:
    """Run every scheduler over every (DAG, ETC-draw) instance.

    Parameters
    ----------
    schedulers:
        Registry names (``"HEFT"``) and/or scheduler objects (your own
        subclass of :class:`Scheduler`).
    dags:
        The workload: a sequence or name->DAG mapping (e.g. a suite from
        :mod:`repro.dag.suites`).
    etc_draws:
        Independent ETC matrices per DAG (paired across schedulers).
    check:
        Validate every schedule (recommended; catches contract bugs in
        custom schedulers immediately).
    """
    resolved = [_resolve(s) for s in schedulers]
    names = [s.name for s in resolved]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate scheduler names: {names}")
    if isinstance(dags, Mapping):
        dag_items = list(dags.items())
    else:
        dag_items = [(d.name, d) for d in dags]
    if not dag_items:
        raise ConfigurationError("no DAGs supplied")
    if etc_draws < 1:
        raise ConfigurationError(f"etc_draws must be >= 1, got {etc_draws}")

    streams = spawn_children(seed, len(dag_items) * etc_draws)
    instances: list[tuple[str, Instance]] = []
    for i, (dag_name, dag) in enumerate(dag_items):
        for k in range(etc_draws):
            rng = streams[i * etc_draws + k]
            inst = make_instance(
                dag,
                num_procs=num_procs,
                heterogeneity=heterogeneity,
                seed=int(rng.integers(0, 2**62)),
                name=f"{dag_name}#{k}",
            )
            instances.append((inst.name, inst))

    makespans: dict[str, list[float]] = {n: [] for n in names}
    slrs: dict[str, list[float]] = {n: [] for n in names}
    for _, inst in instances:
        for sched in resolved:
            schedule = sched.schedule(inst)
            if check:
                validate(schedule, inst)
            makespans[sched.name].append(schedule.makespan)
            slrs[sched.name].append(slr(schedule, inst))

    return ComparisonResult(
        scheduler_names=names,
        instance_names=[n for n, _ in instances],
        makespans=makespans,
        slrs=slrs,
        pairwise=pairwise_comparison(makespans),
    )
