"""Tests for the scheduler registry."""

import pytest

from repro.exceptions import ConfigurationError
from repro.schedulers.base import Scheduler
from repro.schedulers.registry import (
    all_scheduler_names,
    get_scheduler,
    get_schedulers,
    register_scheduler,
)

EXPECTED = {
    "HEFT", "HEFT-median", "HEFT-best", "HEFT-worst", "CPOP", "HCPT",
    "PETS", "DLS", "ETF", "MCP", "HLFET", "TDS", "Random", "RoundRobin",
    "OPT-BB", "IMP", "LA-HEFT", "DUP-HEFT", "DSC", "LC", "SA", "GA", "LMT", "PEFT",
}


class TestRegistry:
    def test_all_builtins_present(self):
        assert EXPECTED <= set(all_scheduler_names())

    def test_get_returns_scheduler(self):
        for name in EXPECTED:
            s = get_scheduler(name)
            assert isinstance(s, Scheduler)

    def test_fresh_instance_each_call(self):
        assert get_scheduler("HEFT") is not get_scheduler("HEFT")

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError) as e:
            get_scheduler("NOPE")
        assert "known" in str(e.value)

    def test_get_many(self):
        scheds = get_schedulers(["HEFT", "CPOP"])
        assert [s.name for s in scheds] == ["HEFT", "CPOP"]

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_scheduler("HEFT", lambda: None)  # type: ignore[arg-type]

    def test_names_sorted(self):
        names = all_scheduler_names()
        assert names == sorted(names)

    def test_registry_names_match_scheduler_names(self):
        # The display name of each default-constructed scheduler should
        # match its registry key (keeps experiment tables readable).
        for name in EXPECTED:
            assert get_scheduler(name).name == name
