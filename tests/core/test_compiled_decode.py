"""Differential suite: the compiled flat-array decoder is behaviour-preserving.

:func:`repro.schedulers.meta.decoder.decode_assignment` (the object
path) is the specification.  Over the full 56-instance corpus this suite
checks that :class:`repro.compiled.CompiledInstance` reproduces it
*bit-identically* — makespans, starts and processors — for HEFT-derived,
random and degenerate assignments, that ``decode_batch`` equals
per-genome decodes, and that the GA/SA schedulers are unchanged with the
compiled core on vs off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiled import CompiledInstance, compile_instance
from repro.exceptions import SchedulingError
from repro.instance import Instance
from repro.kernels import use_kernels
from repro.machine.cluster import Machine
from repro.machine.comm import LinkCommunication
from repro.machine.etc import generate_etc
from repro.dag.generators import random_dag
from repro.schedulers.heft import HEFT
from repro.schedulers.meta import GeneticScheduler, SimulatedAnnealingScheduler
from repro.schedulers.meta.decoder import compiled_decoder, decode_assignment, rank_order
from tests.population import build_population


@pytest.fixture(scope="module")
def population():
    return build_population()


def _assignments(inst: Instance, compiled: CompiledInstance, trials: int, seed: int):
    """HEFT's assignment, two degenerate ones, and ``trials`` random genomes."""
    rng = np.random.default_rng(seed)
    n, q = compiled.n, compiled.q
    yield compiled.genome_of(HEFT().schedule(inst).assignment())
    yield np.zeros(n, dtype=np.int64)
    yield np.full(n, q - 1, dtype=np.int64)
    for _ in range(trials):
        yield rng.integers(0, q, size=n)


def test_population_is_large_enough(population):
    assert len(population) >= 50


def test_decode_fast_bit_identical_on_corpus(population):
    """Makespans AND full placements equal the object path, exactly."""
    for label, inst in population:
        compiled = compile_instance(inst)
        assert compiled is not None, label
        order = rank_order(inst)
        for genome in _assignments(inst, compiled, trials=5, seed=1234):
            schedule = decode_assignment(inst, compiled.assignment_of(genome), order)
            span, starts, procs = compiled.decode_fast(genome)
            assert span == schedule.makespan, (label, genome)
            for i, task in enumerate(compiled.tasks):
                entry = schedule.entry(task)
                assert starts[i] == entry.start, (label, task)
                assert compiled.procs[procs[i]] == entry.proc, (label, task)


def test_decode_fast_matches_legacy_scalar_path(population):
    """The object path with kernels *off* is the original specification."""
    for label, inst in population[::5]:
        compiled = compile_instance(inst)
        order = rank_order(inst)
        for genome in _assignments(inst, compiled, trials=3, seed=99):
            span, _, _ = compiled.decode_fast(genome)
            with use_kernels(False):
                legacy = decode_assignment(inst, compiled.assignment_of(genome), list(order))
            assert span == legacy.makespan, label


def test_decode_batch_equals_per_genome_decodes(population):
    rng = np.random.default_rng(7)
    for label, inst in population[::3]:
        compiled = compile_instance(inst)
        pop = rng.integers(0, compiled.q, size=(12, compiled.n))
        spans = compiled.decode_batch(pop)
        assert spans.shape == (12,)
        for row, span in zip(pop, spans):
            assert compiled.decode_fast(row)[0] == span, label


def test_mapping_and_genome_inputs_agree(population):
    label, inst = population[0]
    compiled = compile_instance(inst)
    genome = np.random.default_rng(3).integers(0, compiled.q, size=compiled.n)
    mapping = compiled.assignment_of(genome)
    assert compiled.decode_fast(mapping)[0] == compiled.decode_fast(genome)[0]
    assert np.array_equal(compiled.genome_of(mapping), genome)


def test_ga_and_sa_unchanged_with_compiled_core(population):
    """Full scheduler runs: identical placements with the compiled core
    on (kernels enabled) vs the object path (kernels disabled)."""
    for label, inst in population[::13]:
        for make in (
            lambda s: GeneticScheduler(population=10, generations=5, seed=s),
            lambda s: SimulatedAnnealingScheduler(iterations=120, seed=s),
        ):
            with use_kernels(True):
                fast = make(11).schedule(inst)
            with use_kernels(False):
                legacy = make(11).schedule(inst)
            assert fast.makespan == legacy.makespan, label
            for task in legacy.tasks():
                a, b = legacy.entry(task), fast.entry(task)
                assert (a.proc, a.start, a.end) == (b.proc, b.start, b.end), (label, task)


def test_decode_reuses_scratch_correctly(population):
    """Back-to-back decodes don't leak state between calls."""
    label, inst = population[1]
    compiled = compile_instance(inst)
    rng = np.random.default_rng(0)
    genomes = [rng.integers(0, compiled.q, size=compiled.n) for _ in range(4)]
    first = [compiled.decode_fast(g)[0] for g in genomes]
    second = [compiled.decode_fast(g)[0] for g in reversed(genomes)]
    assert first == list(reversed(second))


def test_validation_errors():
    from repro.bench import workloads as W

    inst = W.random_instance(np.random.default_rng(2), num_tasks=10, num_procs=3)
    compiled = compile_instance(inst)
    with pytest.raises(SchedulingError):
        compiled.decode_fast([0] * (compiled.n - 1))  # wrong length
    with pytest.raises(SchedulingError):
        compiled.decode_fast([compiled.q] * compiled.n)  # proc out of range
    with pytest.raises(SchedulingError):
        compiled.decode_batch(np.zeros((2, compiled.n + 1), dtype=int))
    with pytest.raises(SchedulingError):
        compiled.genome_of({})  # missing tasks


def _per_link_instance(seed: int = 0) -> Instance:
    from repro.machine.processor import Processor

    dag = random_dag(12, seed=seed)
    ids = [0, 1, 2]
    lat = {p: {q: 0.1 * (1 + (p + q) % 3) for q in ids if q != p} for p in ids}
    bw = {p: {q: 1.0 + ((p * 7 + q) % 5) for q in ids if q != p} for p in ids}
    machine = Machine(
        [Processor(id=i, speed=1.0) for i in ids],
        comm=LinkCommunication(ids, lat, bw),
        name="links",
    )
    etc = generate_etc(dag, machine, heterogeneity=0.5, seed=seed)
    return Instance(dag=dag, machine=machine, etc=etc)


def test_per_link_models_fall_back_to_object_path():
    inst = _per_link_instance()
    assert compile_instance(inst) is None
    assert compiled_decoder(inst) is None
    # The metaheuristics still work (object path) and stay on/off-identical.
    with use_kernels(True):
        fast = GeneticScheduler(population=8, generations=3, seed=5).schedule(inst)
    with use_kernels(False):
        legacy = GeneticScheduler(population=8, generations=3, seed=5).schedule(inst)
    assert fast.makespan == legacy.makespan


def test_compiled_disabled_when_kernels_off():
    from repro.bench import workloads as W

    inst = W.random_instance(np.random.default_rng(4), num_tasks=8, num_procs=2)
    with use_kernels(False):
        assert compiled_decoder(inst) is None
    assert compiled_decoder(inst) is not None
