"""Tests for the application-graph generators (Gaussian, FFT, Laplace,
Cholesky)."""

import pytest

from repro.dag.analysis import critical_path_length, graph_levels
from repro.dag.generators import (
    cholesky_dag,
    fft_dag,
    gaussian_elimination_dag,
    laplace_dag,
)
from repro.exceptions import ConfigurationError


class TestGaussian:
    @pytest.mark.parametrize("m", [2, 3, 5, 8, 12])
    def test_task_count_formula(self, m):
        dag = gaussian_elimination_dag(m)
        assert dag.num_tasks == (m * m + m - 2) // 2

    def test_single_entry_single_exit(self):
        dag = gaussian_elimination_dag(6)
        assert dag.entry_tasks() == [("piv", 0)]
        assert dag.exit_tasks() == [("upd", 4, 5)]

    def test_pivot_chain_dependencies(self):
        dag = gaussian_elimination_dag(5)
        for k in range(1, 4):
            assert dag.has_edge(("upd", k - 1, k), ("piv", k))

    def test_update_column_flow(self):
        dag = gaussian_elimination_dag(5)
        assert dag.has_edge(("upd", 0, 3), ("upd", 1, 3))

    def test_costs_shrink_with_step(self):
        dag = gaussian_elimination_dag(6)
        assert dag.cost(("piv", 0)) > dag.cost(("piv", 4))

    def test_validates(self):
        gaussian_elimination_dag(10).validate()

    def test_rejects_tiny(self):
        with pytest.raises(ConfigurationError):
            gaussian_elimination_dag(1)

    def test_rejects_bad_scales(self):
        with pytest.raises(ConfigurationError):
            gaussian_elimination_dag(5, cost_scale=0.0)
        with pytest.raises(ConfigurationError):
            gaussian_elimination_dag(5, data_scale=-1.0)


class TestFFT:
    @pytest.mark.parametrize("p,expected", [(2, 2 * 2 - 1 + 2 * 1), (4, 7 + 4 * 2), (8, 15 + 8 * 3)])
    def test_task_count_formula(self, p, expected):
        assert fft_dag(p).num_tasks == expected

    def test_rejects_non_power_of_two(self):
        for bad in (0, 1, 3, 6, 12):
            with pytest.raises(ConfigurationError):
                fft_dag(bad)

    def test_single_entry(self):
        dag = fft_dag(8)
        assert dag.entry_tasks() == [("call", 0, 0)]

    def test_exits_are_final_butterflies(self):
        dag = fft_dag(8)
        exits = dag.exit_tasks()
        assert len(exits) == 8
        assert all(t[0] == "bfly" and t[1] == 3 for t in exits)

    def test_butterfly_has_two_parents(self):
        dag = fft_dag(8)
        for i in range(8):
            assert dag.in_degree(("bfly", 2, i)) == 2

    def test_depth(self):
        dag = fft_dag(16)
        # depth = tree (4) + butterflies (4) => max level index 8
        assert max(graph_levels(dag).values()) == 8

    def test_validates(self):
        fft_dag(32).validate()


class TestLaplace:
    @pytest.mark.parametrize("n", [1, 2, 5, 9])
    def test_task_count(self, n):
        assert laplace_dag(n).num_tasks == n * n

    def test_single_entry_exit(self):
        dag = laplace_dag(4)
        assert dag.entry_tasks() == [(0, 0)]
        assert dag.exit_tasks() == [(3, 3)]

    def test_wavefront_levels(self):
        dag = laplace_dag(4)
        levels = graph_levels(dag)
        for (i, j), lv in levels.items():
            assert lv == i + j

    def test_cp_length(self):
        n = 5
        dag = laplace_dag(n, cost_scale=10.0, data_scale=0.0)
        # CP = 2n-1 tasks of cost 10.
        assert critical_path_length(dag) == pytest.approx(10.0 * (2 * n - 1))

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            laplace_dag(0)


class TestCholesky:
    def test_task_kinds_and_counts(self):
        t = 4
        dag = cholesky_dag(t)
        kinds = {}
        for task in dag.task_objects():
            kinds[task.attrs["kind"]] = kinds.get(task.attrs["kind"], 0) + 1
        assert kinds["POTRF"] == t
        assert kinds["TRSM"] == t * (t - 1) // 2
        assert kinds["SYRK"] == t * (t - 1) // 2
        assert kinds["GEMM"] == sum(
            (t - 1 - k) * (t - 2 - k) // 2 for k in range(t)
        )

    def test_single_tile_is_one_task(self):
        assert cholesky_dag(1).num_tasks == 1

    def test_entry_is_first_potrf(self):
        dag = cholesky_dag(4)
        assert dag.entry_tasks() == [("POTRF", 0)]

    def test_exit_is_last_potrf(self):
        dag = cholesky_dag(4)
        assert dag.exit_tasks() == [("POTRF", 3)]

    def test_trsm_depends_on_potrf(self):
        dag = cholesky_dag(3)
        assert dag.has_edge(("POTRF", 0), ("TRSM", 0, 1))

    def test_gemm_cost_double(self):
        dag = cholesky_dag(4, cost_scale=6.0)
        assert dag.cost(("GEMM", 0, 1, 2)) == pytest.approx(12.0)
        assert dag.cost(("POTRF", 0)) == pytest.approx(2.0)

    def test_validates(self):
        cholesky_dag(6).validate()

    def test_rejects_zero_tiles(self):
        with pytest.raises(ConfigurationError):
            cholesky_dag(0)
