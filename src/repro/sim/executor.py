"""Execute a static schedule on the discrete-event engine.

Semantics: each processor executes its assigned copies in the order of
their planned start times (a static schedule fixes the *sequence*, not
the wall-clock times); a copy begins as soon as its processor is free
and, for every parent task, data from at least one copy of that parent
has arrived locally.  Durations come from a :class:`NoiseModel` (the
identity by default), so with no noise the simulation independently
re-derives — and for the semi-active schedules all built-in schedulers
produce, exactly reproduces — the analytic makespan.

Fault injection (``faults``): any subset of processors can be killed at
chosen times.  The fail-stop semantics are exact, with no tolerance
window, so predicted and realised degraded timelines can be compared
bit-for-bit (see :mod:`repro.schedulers.resilient`):

* a copy **completes** iff its finish time is ``<= T`` (kill time of its
  processor) — results produced at the instant of failure survive;
* a copy **starts** iff its computed start is ``< T``; a copy whose
  start falls at or after the kill never runs, and (head-of-line
  execution) neither does anything queued behind it;
* a copy with ``start < T < end`` is **aborted**: it occupied the
  processor but delivers no data to any consumer.

Copies that never start are reported as ``unstarted`` — on a killed
processor these are casualties of the fault; on a live processor they
signal starvation (every copy of some parent died), which is exactly
what a k-resilient schedule must prevent for kill sets of size <= k.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.instance import Instance
from repro.schedule.schedule import Schedule, ScheduledTask
from repro.sim.engine import EventQueue, SimulationError
from repro.sim.noise import NoiseModel, NoNoise
from repro.types import ProcId, TaskId


def proc_sort_key(proc: ProcId) -> tuple[str, str]:
    """Deterministic total order over mixed-type processor ids.

    The same idiom as :meth:`repro.dag.graph.TaskDAG.topological_order`
    uses for task ids: ordering never derives from ``hash()``, so event
    sequences survive ``PYTHONHASHSEED`` restarts.
    """
    return (str(type(proc)), str(proc))


@dataclass(frozen=True)
class SimulatedCopy:
    """Simulated execution record of one copy."""

    task: TaskId
    proc: ProcId
    start: float
    end: float
    planned: ScheduledTask


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated run.

    ``copies`` holds only *completed* copies; under fault injection the
    casualties are split into ``aborted`` (started, then killed) and
    ``unstarted`` (never ran at all).  Fault-free runs keep the historic
    shape: every copy completes and the extra fields are empty.
    """

    makespan: float
    copies: list[SimulatedCopy]
    events_processed: int
    faults: dict[ProcId, float] = field(default_factory=dict)
    aborted: list[SimulatedCopy] = field(default_factory=list)
    unstarted: list[ScheduledTask] = field(default_factory=list)

    def end_of(self, task: TaskId) -> float:
        """Earliest simulated finish among the task's completed copies."""
        ends = [c.end for c in self.copies if c.task == task]
        if not ends:
            raise SimulationError(f"task {task!r} was not simulated")
        return min(ends)

    def completed(self, task: TaskId) -> bool:
        """True when at least one copy of ``task`` ran to completion."""
        return any(c.task == task for c in self.copies)

    def task_ends(self) -> dict[TaskId, float]:
        """Earliest completed finish per task (completed tasks only)."""
        out: dict[TaskId, float] = {}
        for c in self.copies:
            prev = out.get(c.task)
            if prev is None or c.end < prev:
                out[c.task] = c.end
        return out

    def all_tasks_completed(self, instance: Instance) -> bool:
        """True when every DAG task has at least one completed copy."""
        done = {c.task for c in self.copies}
        return all(t in done for t in instance.dag.tasks())


def execute(
    schedule: Schedule,
    instance: Instance,
    noise: NoiseModel | None = None,
    link_contention: bool = False,
    faults: Mapping[ProcId, float] | None = None,
) -> SimulationResult:
    """Simulate ``schedule`` on ``instance``; returns the realised times.

    The schedule must be complete (every DAG task placed).  Without
    ``faults``, raises :class:`SimulationError` on deadlock, which would
    indicate an infeasible schedule.

    ``link_contention=True`` serialises transfers per directed processor
    pair (FIFO), breaking the contention-free assumption every static
    scheduler in this library plans with — the resulting makespan
    inflation measures the analytic model's error (experiment E17).

    ``faults`` maps processor ids to kill times (``{p: 0.0}`` kills
    ``p`` before it runs anything).  With faults present the run never
    raises on incomplete execution — casualties land in the result's
    ``aborted``/``unstarted`` fields and callers inspect
    :meth:`SimulationResult.all_tasks_completed` instead.
    """
    noise = noise or NoNoise()
    dag = instance.dag
    comm_factor = noise.comm_factor()

    kill_at: dict[ProcId, float] = {}
    if faults:
        known = set(schedule.machine.proc_ids())
        for proc, when in faults.items():
            if proc not in known:
                raise SimulationError(f"cannot kill unknown processor {proc!r}")
            when = float(when)
            if not (when >= 0.0):
                raise SimulationError(f"kill time must be >= 0, got {when!r} for {proc!r}")
            kill_at[proc] = when

    # Per-processor copy sequences in planned order.
    sequences: dict[ProcId, list[ScheduledTask]] = {
        p: schedule.proc_entries(p) for p in schedule.machine.proc_ids()
    }
    key = lambda c: (c.task, c.proc, c.start)  # noqa: E731 - copy identity

    # Bookkeeping per copy: which parents still lack local data.
    waiting: dict[tuple, set[TaskId]] = {}
    queue_index: dict[ProcId, int] = {p: 0 for p in sequences}
    proc_free_at: dict[ProcId, float] = {p: 0.0 for p in sequences}
    started: set[tuple] = set()
    finished_copies: list[SimulatedCopy] = []
    aborted_copies: list[SimulatedCopy] = []

    all_copies: list[ScheduledTask] = []
    for p, seq in sequences.items():
        all_copies.extend(seq)
    for copy in all_copies:
        waiting[key(copy)] = set(dag.predecessors(copy.task))

    q = EventQueue()

    def try_start_next(proc: ProcId) -> None:
        """Start the next queued copy on ``proc`` if it is ready now."""
        idx = queue_index[proc]
        seq = sequences[proc]
        if idx >= len(seq):
            return
        copy = seq[idx]
        k = key(copy)
        if k in started or waiting[k]:
            return
        start = max(q.now, proc_free_at[proc])
        kill = kill_at.get(proc)
        if kill is not None and start >= kill:
            # The head copy would begin at/after the kill: it never runs,
            # and head-of-line execution means neither does the tail.
            return
        duration = noise.duration(copy.task, copy.proc, copy.duration)
        started.add(k)
        queue_index[proc] += 1
        proc_free_at[proc] = start + duration
        q.push(start + duration, "finish", (copy, start))

    # Directed-link FIFO state for the contention model: the time each
    # (src, dst) pair's channel frees up.
    link_free: dict[tuple[ProcId, ProcId], float] = {}

    def on_finish(copy: ScheduledTask, start: float) -> None:
        kill = kill_at.get(copy.proc)
        if kill is not None and q.now > kill:
            # Started before the kill, finished after it: aborted.  The
            # copy occupied the processor but its output is lost.
            aborted_copies.append(
                SimulatedCopy(task=copy.task, proc=copy.proc, start=start, end=q.now, planned=copy)
            )
            try_start_next(copy.proc)
            return
        finished_copies.append(
            SimulatedCopy(task=copy.task, proc=copy.proc, start=start, end=q.now, planned=copy)
        )
        # Deliver data to every processor hosting a consumer copy.  The
        # destination set is iterated in a hash-free order so the event
        # sequence (and hence traces and result ordering) is identical
        # across PYTHONHASHSEED restarts.
        for child in dag.successors(copy.task):
            dests = sorted({c.proc for c in schedule.copies(child)}, key=proc_sort_key)
            for dest in dests:
                delay = instance.comm_time(copy.task, child, copy.proc, dest) * comm_factor
                if link_contention and delay > 0 and dest != copy.proc:
                    link = (copy.proc, dest)
                    depart = max(q.now, link_free.get(link, 0.0))
                    link_free[link] = depart + delay
                    q.push(depart + delay, "arrive", (copy.task, child, dest))
                else:
                    q.push(q.now + delay, "arrive", (copy.task, child, dest))
        try_start_next(copy.proc)

    def on_arrive(parent: TaskId, child: TaskId, dest: ProcId) -> None:
        for child_copy in schedule.copies(child):
            if child_copy.proc != dest:
                continue
            k = key(child_copy)
            waiting[k].discard(parent)
        try_start_next(dest)

    def handler(ev) -> None:
        if ev.kind == "finish":
            on_finish(*ev.payload)
        elif ev.kind == "arrive":
            on_arrive(*ev.payload)
        elif ev.kind == "kick":
            try_start_next(ev.payload)
        else:  # pragma: no cover - internal
            raise SimulationError(f"unknown event kind {ev.kind!r}")

    for p in sequences:
        q.push(0.0, "kick", p)

    processed = q.drain(handler)

    if not kill_at and len(finished_copies) != len(all_copies):
        stuck = [key(c) for c in all_copies if key(c) not in started]
        raise SimulationError(
            f"deadlock: {len(stuck)} copies never started, e.g. {stuck[:3]}"
        )
    unstarted = [c for c in all_copies if key(c) not in started]
    makespan = max((c.end for c in finished_copies), default=0.0)
    return SimulationResult(
        makespan=makespan,
        copies=finished_copies,
        events_processed=processed,
        faults=dict(kill_at),
        aborted=aborted_copies,
        unstarted=unstarted,
    )
