"""Fault-injection harness: rule validation, firing semantics, and the
cross-process once-only token protocol."""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.bench import workloads as W
from repro.service import faults, protocol
from repro.service.engine import EngineConfig, SchedulingEngine
from repro.service.errors import WorkerError
from repro.service.faults import FaultInjected, FaultPlan, FaultRule
from repro.utils.rng import as_generator


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.clear()
    yield
    faults.clear()


def _instance(seed: int = 3):
    return W.random_instance(as_generator(seed), num_tasks=6, num_procs=3)


# ----------------------------------------------------------------------
# rule validation
# ----------------------------------------------------------------------
def test_rule_rejects_unknown_point_and_action():
    with pytest.raises(ValueError, match="point"):
        FaultRule(point="worker.nope", action="raise")
    with pytest.raises(ValueError, match="action"):
        FaultRule(point="worker.start", action="explode")


def test_rule_rejects_bad_counts():
    with pytest.raises(ValueError):
        FaultRule(point="worker.start", action="raise", times=-1)
    with pytest.raises(ValueError):
        FaultRule(point="worker.start", action="delay", delay_s=-1.0)
    # times=0 is a valid *disabled* rule: it never claims, never fires.
    off = FaultRule(point="worker.start", action="raise", times=0)
    faults.install(FaultPlan((off,)))
    faults.fire("worker.start")


def test_points_cover_worker_entry_and_exit():
    assert set(faults.POINTS) == {"worker.start", "worker.finish", "worker.encode"}


def test_token_stem_is_stable_and_distinct():
    a = FaultRule(point="worker.start", action="raise")
    b = FaultRule(point="worker.start", action="raise")
    c = FaultRule(point="worker.finish", action="raise")
    assert a.token_stem() == b.token_stem()
    assert a.token_stem() != c.token_stem()


# ----------------------------------------------------------------------
# firing
# ----------------------------------------------------------------------
def test_fire_is_noop_without_plan():
    faults.fire("worker.start")  # must not raise


def test_raise_action_fires_exactly_times():
    plan = FaultPlan((FaultRule(point="worker.start", action="raise", times=2),))
    faults.install(plan)
    with pytest.raises(FaultInjected):
        faults.fire("worker.start")
    with pytest.raises(FaultInjected):
        faults.fire("worker.start")
    faults.fire("worker.start")  # budget spent: no-op from now on
    faults.fire("worker.finish")  # different point: never armed


def test_install_resets_in_process_counters():
    plan = FaultPlan((FaultRule(point="worker.start", action="raise", times=1),))
    faults.install(plan)
    with pytest.raises(FaultInjected):
        faults.fire("worker.start")
    faults.install(plan)  # re-install re-arms
    with pytest.raises(FaultInjected):
        faults.fire("worker.start")


def test_delay_action_sleeps():
    plan = FaultPlan((FaultRule(point="worker.finish", action="delay",
                                delay_s=0.05, times=1),))
    faults.install(plan)
    t0 = time.monotonic()
    faults.fire("worker.finish")
    assert time.monotonic() - t0 >= 0.04
    t1 = time.monotonic()
    faults.fire("worker.finish")  # spent: immediate
    assert time.monotonic() - t1 < 0.04


def test_token_dir_claims_across_installs(tmp_path):
    """Token files make ``times`` a *global* budget: a respawned worker
    re-installing the same plan must not restart the count — otherwise a
    kill rule would murder every replacement pool too."""
    rule = FaultRule(point="worker.start", action="raise", times=2,
                     token_dir=str(tmp_path))
    plan = FaultPlan((rule,))
    faults.install(plan)
    with pytest.raises(FaultInjected):
        faults.fire("worker.start")
    faults.install(plan)  # simulates a freshly-initialised worker process
    with pytest.raises(FaultInjected):
        faults.fire("worker.start")
    faults.install(plan)
    faults.fire("worker.start")  # third claim fails: budget globally spent
    tokens = sorted(p.name for p in tmp_path.iterdir())
    assert tokens == [f"{rule.token_stem()}.0", f"{rule.token_stem()}.1"]


# ----------------------------------------------------------------------
# wiring into the compute path
# ----------------------------------------------------------------------
def test_compute_path_fires_worker_points():
    from repro.instance_io import instance_to_json

    plan = FaultPlan((FaultRule(point="worker.start", action="raise", times=1),))
    faults.install(plan)
    with pytest.raises(FaultInjected):
        protocol.compute_schedule_payload(instance_to_json(_instance()), "HEFT")
    # Budget spent: the same call now computes normally.
    payload = protocol.compute_schedule_payload(instance_to_json(_instance()), "HEFT")
    assert payload["placements"]


def test_encode_stage_fault_fires_after_scheduling(tmp_path):
    """The ``worker.encode`` site fires inside response serialisation —
    strictly after ``worker.finish`` — so an encode fault means the
    schedule itself was already computed and validated.  It must surface
    as an ordinary worker exception, and the spent budget must leave the
    very next call computing the same payload as a fault-free run."""
    from repro.instance_io import instance_to_json

    order: list[str] = []
    plan = FaultPlan((
        FaultRule(point="worker.finish", action="delay", delay_s=0.0, times=1),
        FaultRule(point="worker.encode", action="raise", times=1),
    ))
    faults.install(plan)
    original_fire = faults.fire

    def recording_fire(point):
        order.append(point)
        original_fire(point)

    text = instance_to_json(_instance())
    try:
        faults.fire = recording_fire
        with pytest.raises(FaultInjected):
            protocol.compute_schedule_payload(text, "HEFT")
    finally:
        faults.fire = original_fire
    assert order.index("worker.finish") < order.index("worker.encode")
    clean = protocol.compute_schedule_payload(text, "HEFT")
    faults.clear()
    assert clean == protocol.compute_schedule_payload(text, "HEFT")


def test_engine_surfaces_injected_raise_as_worker_error():
    """A *raise* fault is an ordinary worker exception — it must map to
    WorkerError (500), not trigger a pool respawn."""

    async def scenario():
        plan = FaultPlan((FaultRule(point="worker.start", action="raise", times=1),))
        engine = SchedulingEngine(EngineConfig(workers=0))
        faults.install(plan)  # workers=0 computes in-process
        await engine.start()
        try:
            with pytest.raises(WorkerError, match="FaultInjected"):
                await engine.submit(_instance(), "HEFT")
            stats = engine.stats()
            assert stats.errors == 1
            assert stats.respawns == 0
        finally:
            await engine.stop()

    asyncio.run(scenario())
