"""Assignment decoder shared by the metaheuristics.

A candidate solution is a task -> processor assignment.  Decoding places
tasks in decreasing upward-rank order, each on its assigned processor at
the earliest insertion slot — the same substrate as every list
scheduler, so search quality differences are purely about assignments.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import placement_on
from repro.schedulers.ranking import upward_ranks
from repro.types import ProcId, TaskId


def rank_order(instance: Instance) -> list[TaskId]:
    """The decoding order: decreasing upward rank (precedence-valid)."""
    ranks = upward_ranks(instance)
    pos = {t: i for i, t in enumerate(instance.dag.topological_order())}
    return sorted(instance.dag.tasks(), key=lambda t: (-ranks[t], pos[t]))


def decode_assignment(
    instance: Instance,
    assignment: Mapping[TaskId, ProcId],
    order: Sequence[TaskId] | None = None,
    name: str = "decoded",
) -> Schedule:
    """Build the schedule induced by ``assignment``.

    ``order`` defaults to the rank order; callers running many decodes
    should precompute it once via :func:`rank_order`.
    """
    if order is None:
        order = rank_order(instance)
    schedule = Schedule(instance.machine, name=name)
    for task in order:
        placed = placement_on(schedule, instance, task, assignment[task], insertion=True)
        schedule.add(task, placed.proc, placed.start, placed.end - placed.start)
    return schedule
