"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Event, EventQueue, SimulationError


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.push(5.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["a", "c", "b"]

    def test_ties_fifo(self):
        q = EventQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_clock_advances(self):
        q = EventQueue()
        q.push(4.0, "x")
        assert q.now == 0.0
        q.pop()
        assert q.now == 4.0

    def test_past_scheduling_rejected(self):
        q = EventQueue()
        q.push(4.0, "x")
        q.pop()
        with pytest.raises(SimulationError):
            q.push(1.0, "late")

    def test_now_scheduling_allowed(self):
        q = EventQueue()
        q.push(4.0, "x")
        q.pop()
        ev = q.push(4.0, "same-time")
        assert ev.time == 4.0

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_len(self):
        q = EventQueue()
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert len(q) == 2

    def test_payload_carried(self):
        q = EventQueue()
        q.push(1.0, "k", payload={"x": 1})
        assert q.pop().payload == {"x": 1}

    def test_drain(self):
        q = EventQueue()
        seen = []
        q.push(2.0, "a")
        q.push(1.0, "b")
        n = q.drain(lambda ev: seen.append(ev.kind))
        assert n == 2 and seen == ["b", "a"]

    def test_drain_handler_can_push(self):
        q = EventQueue()
        q.push(1.0, "seed")
        count = [0]

        def handler(ev: Event) -> None:
            count[0] += 1
            if ev.kind == "seed":
                q.push(ev.time + 1.0, "child")

        q.drain(handler)
        assert count[0] == 2

    def test_drain_max_events(self):
        q = EventQueue()
        for i in range(5):
            q.push(float(i), "e")
        assert q.drain(lambda ev: None, max_events=3) == 3
        assert len(q) == 2

    def test_drain_max_events_zero_handles_nothing(self):
        # Regression: the limit check used to run *after* the pop, so
        # max_events=0 still handled one event.
        q = EventQueue()
        q.push(1.0, "a")
        seen = []
        assert q.drain(seen.append, max_events=0) == 0
        assert seen == []
        assert len(q) == 1
        assert q.now == 0.0  # the clock never advanced

    def test_drain_max_events_one(self):
        q = EventQueue()
        q.push(1.0, "a")
        q.push(2.0, "b")
        seen = []
        assert q.drain(lambda ev: seen.append(ev.kind), max_events=1) == 1
        assert seen == ["a"]
        assert len(q) == 1

    def test_drain_max_events_equals_queue_length(self):
        q = EventQueue()
        for i in range(4):
            q.push(float(i), "e")
        assert q.drain(lambda ev: None, max_events=4) == 4
        assert len(q) == 0

    def test_drain_max_events_bounds_handler_pushes(self):
        # A handler that pushes on every event would drain forever
        # without the bound; the bound must count *handled* events.
        q = EventQueue()
        q.push(0.0, "seed")
        handled = []

        def handler(ev: Event) -> None:
            handled.append(ev.time)
            q.push(ev.time + 1.0, "child")

        assert q.drain(handler, max_events=5) == 5
        assert handled == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert len(q) == 1  # the last push is still queued

    def test_push_nan_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.push(float("nan"), "bad")

    def test_clamp_never_reorders_popped_timestamps(self):
        # An event within tolerance *below* now is clamped up to now,
        # so drained times can never go backwards.
        q = EventQueue()
        q.push(1.0, "a")
        q.pop()
        ev = q.push(1.0 - 5e-10, "tolerated")
        assert ev.time == 1.0
        assert q.pop().time >= 1.0
