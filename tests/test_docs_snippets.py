"""Execute the documentation's code snippets so the docs cannot rot.

The README quickstart and the tutorial's core snippets are extracted
and run; if an API rename breaks them, this test fails before a user
ever sees a stale example.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _python_blocks(path: Path) -> list[str]:
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeSnippets:
    def test_quickstart_block_runs(self):
        blocks = _python_blocks(ROOT / "README.md")
        assert blocks, "README has no python blocks?"
        ns: dict = {}
        exec(blocks[0], ns)  # noqa: S102 - executing our own docs
        # The quickstart defines a schedule and prints metrics; verify
        # the objects it created are sane.
        assert "inst" in ns and "dag" in ns


class TestTutorialSnippets:
    @pytest.fixture(scope="class")
    def blocks(self):
        return _python_blocks(ROOT / "docs" / "tutorial.md")

    def test_has_blocks(self, blocks):
        assert len(blocks) >= 6

    def test_graph_building_block(self, blocks):
        ns: dict = {}
        exec(blocks[0], ns)
        assert ns["dag"].num_tasks > 0

    def test_full_pipeline_blocks(self, blocks):
        # Blocks 1-6 build on each other (machine, instance, schedule,
        # metrics, dissection, simulation); execute them in one
        # namespace exactly as a reader following along would.
        ns: dict = {}
        exec(blocks[0], ns)
        for block in blocks[1:7]:
            # The dissection block writes example files; redirect to /tmp.
            block = block.replace('"gantt.svg"', '"/tmp/tutorial_gantt.svg"')
            block = block.replace('"plan.json"', '"/tmp/tutorial_plan.json"')
            exec(block, ns)
        assert ns["schedule"].makespan > 0

    def test_custom_scheduler_block(self, blocks):
        custom = next(b for b in blocks if "class Mine" in b)
        ns: dict = {}
        exec(custom, ns)
        assert "MINE" in ns["result"].scheduler_names
