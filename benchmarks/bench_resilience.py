"""Resilience benchmark: goodput and recovery under worker-kill chaos.

Drives the real engine (process-pool workers) through a fixed workload
three ways:

* **baseline** — no faults, for the goodput reference;
* **chaos** — a fault plan kills a worker at ``worker.start`` for ~10%
  of the workload's requests; the engine must heal (quarantine +
  respawn + re-execute) while the workload keeps flowing;
* **recovery probe** — a single request against a pool whose first
  compute is fatal, isolating the cost of one heal cycle (respawn +
  re-warm + re-execution) from steady-state throughput.

Goodput counts *successful* responses only; with self-healing, chaos
goodput must stay > 0 with zero caller-visible errors.  Writes
``BENCH_resilience.json`` at the repo root.  Run directly to
regenerate:

    PYTHONPATH=src python benchmarks/bench_resilience.py

The pytest wrapper runs a smaller protocol and enforces the PR's
acceptance floor: every request under chaos completes (no errors), at
least one respawn actually happened, and chaos goodput stays within a
sane fraction of baseline.
"""

from __future__ import annotations

import asyncio
import json
import math
import tempfile
import time
from pathlib import Path

from repro.bench import workloads as W
from repro.service import (
    EngineConfig,
    FaultPlan,
    FaultRule,
    SchedulingEngine,
)
from repro.utils.rng import as_generator

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_resilience.json"

#: Benchmark protocol: ~10% of requests meet a fatal worker, two pool
#: workers, DAGs big enough that a kill lands mid-load.
PROTOCOL = dict(num_instances=20, num_tasks=60, num_procs=6, workers=2,
                kill_fraction=0.1, alg="HEFT")


def _instances(n: int, num_tasks: int, num_procs: int, seed_base: int = 4000):
    return [
        W.random_instance(as_generator(seed_base + i), num_tasks=num_tasks, num_procs=num_procs)
        for i in range(n)
    ]


async def _drive(engine: SchedulingEngine, instances, alg: str, timeout: float) -> dict:
    """Submit the whole workload concurrently; count outcomes."""
    t0 = time.perf_counter()
    outcomes = await asyncio.gather(
        *[engine.submit(inst, alg, timeout=timeout) for inst in instances],
        return_exceptions=True,
    )
    wall_s = time.perf_counter() - t0
    completed = sum(1 for o in outcomes if isinstance(o, dict))
    failures = [type(o).__name__ for o in outcomes if not isinstance(o, dict)]
    return {
        "wall_s": wall_s,
        "completed": completed,
        "failed": len(failures),
        "failure_types": sorted(set(failures)),
        "goodput_rps": completed / wall_s if wall_s > 0 else 0.0,
    }


async def _run_pass(instances, alg: str, workers: int,
                    fault_plan: FaultPlan | None = None) -> dict:
    engine = SchedulingEngine(EngineConfig(
        workers=workers, fault_plan=fault_plan, max_respawns=8,
        respawn_window=300.0, queue_depth=256, default_timeout=300.0,
        cache_size=4 * len(instances),
    ))
    await engine.start()
    try:
        outcome = await _drive(engine, instances, alg, timeout=300.0)
        stats = engine.stats()
        outcome["respawns"] = stats.respawns
        outcome["reexecutions"] = stats.retries
        outcome["errors"] = stats.errors
        return outcome
    finally:
        await engine.stop(drain=False)


async def _recovery_probe(instance, alg: str, workers: int, token_dir: str) -> dict:
    """Wall time of one request whose first compute kills its worker,
    minus the same request on a healthy pool: the cost of one heal."""
    healthy = await _run_pass([instance], alg, workers)
    plan = FaultPlan((
        FaultRule(point="worker.start", action="kill", times=1, token_dir=token_dir),
    ))
    hurt = await _run_pass([instance], alg, workers, fault_plan=plan)
    return {
        "healthy_s": healthy["wall_s"],
        "healed_s": hurt["wall_s"],
        "recovery_overhead_s": max(0.0, hurt["wall_s"] - healthy["wall_s"]),
        "respawns": hurt["respawns"],
        "completed": hurt["completed"],
    }


async def run_benchmark(num_instances: int, num_tasks: int, num_procs: int,
                        workers: int, kill_fraction: float, alg: str) -> dict:
    instances = _instances(num_instances, num_tasks, num_procs)
    kills = max(1, math.floor(num_instances * kill_fraction))
    baseline = await _run_pass(instances, alg, workers)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tokens:
        plan = FaultPlan((
            FaultRule(point="worker.start", action="kill", times=kills,
                      token_dir=tokens),
        ))
        chaos = await _run_pass(instances, alg, workers, fault_plan=plan)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tokens:
        recovery = await _recovery_probe(instances[0], alg, workers, tokens)
    return {
        "config": {
            "num_instances": num_instances,
            "num_tasks": num_tasks,
            "num_procs": num_procs,
            "workers": workers,
            "kills": kills,
            "alg": alg,
        },
        "baseline": baseline,
        "chaos": chaos,
        "goodput_ratio": (chaos["goodput_rps"] / baseline["goodput_rps"]
                          if baseline["goodput_rps"] > 0 else 0.0),
        "recovery": recovery,
    }


def generate() -> dict:
    doc = {
        "benchmark": "repro.service goodput + recovery under worker-kill chaos",
        "results": asyncio.run(run_benchmark(**PROTOCOL)),
    }
    OUT.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


# ----------------------------------------------------------------------
# pytest wrapper (soft-threshold CI gate, smaller protocol)
# ----------------------------------------------------------------------
def test_chaos_goodput_floor():
    result = asyncio.run(run_benchmark(
        num_instances=8, num_tasks=40, num_procs=4, workers=2,
        kill_fraction=0.15, alg="HEFT",
    ))
    chaos = result["chaos"]
    assert chaos["failed"] == 0, f"chaos failures: {chaos['failure_types']}"
    assert chaos["completed"] == 8, "every request must survive worker kills"
    assert chaos["errors"] == 0, "worker death must never surface as WorkerError"
    assert chaos["respawns"] >= 1, "the kill plan must have forced a respawn"
    assert chaos["goodput_rps"] > 0
    assert result["recovery"]["completed"] == 1
    assert result["recovery"]["respawns"] >= 1


if __name__ == "__main__":
    doc = generate()
    res = doc["results"]
    base, chaos, rec = res["baseline"], res["chaos"], res["recovery"]
    print(f"baseline goodput {base['goodput_rps']:7.2f} rps "
          f"({base['completed']}/{res['config']['num_instances']} ok)")
    print(f"chaos    goodput {chaos['goodput_rps']:7.2f} rps "
          f"({chaos['completed']}/{res['config']['num_instances']} ok, "
          f"{chaos['respawns']} respawns, {chaos['reexecutions']} re-executions)")
    print(f"goodput ratio under ~{res['config']['kills']} kills: "
          f"{res['goodput_ratio']:.2f}x of baseline")
    print(f"recovery overhead: {rec['recovery_overhead_s']:.2f} s "
          f"(healthy {rec['healthy_s']:.2f} s -> healed {rec['healed_s']:.2f} s)")
    print(f"wrote {OUT}")
