"""Machine (target-system) model: processors, communication, ETC matrices."""

from repro.machine.processor import Processor
from repro.machine.comm import (
    CommunicationModel,
    LinkCommunication,
    UniformCommunication,
    ZeroCommunication,
)
from repro.machine.cluster import Machine
from repro.machine.etc import ETCMatrix, generate_etc, etc_from_speeds
from repro.machine.topology import (
    bus_machine,
    fully_connected_machine,
    mesh_machine,
    ring_machine,
    star_machine,
)

__all__ = [
    "Processor",
    "CommunicationModel",
    "LinkCommunication",
    "UniformCommunication",
    "ZeroCommunication",
    "Machine",
    "ETCMatrix",
    "generate_etc",
    "etc_from_speeds",
    "bus_machine",
    "fully_connected_machine",
    "mesh_machine",
    "ring_machine",
    "star_machine",
]
