"""Tests for repro.utils.stats."""

import math

import pytest

from repro.utils.stats import (
    confidence_interval95,
    describe,
    geometric_mean,
    mean,
    median,
    stdev,
)


class TestMean:
    def test_basic(self):
        assert mean([1, 2, 3]) == pytest.approx(2.0)

    def test_single(self):
        assert mean([5.0]) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_accepts_iterable(self):
        assert mean(x for x in (2.0, 4.0)) == pytest.approx(3.0)


class TestMedian:
    def test_odd(self):
        assert median([3, 1, 2]) == 2.0

    def test_even(self):
        assert median([1, 2, 3, 4]) == pytest.approx(2.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median([])


class TestStdev:
    def test_known(self):
        assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=1e-3)

    def test_single_is_zero(self):
        assert stdev([3.0]) == 0.0

    def test_constant_is_zero(self):
        assert stdev([2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stdev([])


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_invariant_under_scaling(self):
        base = [1.1, 1.5, 2.0]
        assert geometric_mean([3 * x for x in base]) == pytest.approx(
            3 * geometric_mean(base)
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestConfidenceInterval:
    def test_contains_mean(self):
        lo, hi = confidence_interval95([1, 2, 3, 4, 5])
        assert lo <= 3.0 <= hi

    def test_single_degenerates(self):
        assert confidence_interval95([7.0]) == (7.0, 7.0)

    def test_width_shrinks_with_samples(self):
        small = confidence_interval95([1, 2, 3, 4])
        big = confidence_interval95([1, 2, 3, 4] * 25)
        assert (big[1] - big[0]) < (small[1] - small[0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confidence_interval95([])


class TestDescribe:
    def test_fields(self):
        s = describe([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.min == 1.0
        assert s.max == 3.0
        assert s.median == 2.0
        assert s.stdev == pytest.approx(1.0)

    def test_single(self):
        s = describe([4.0])
        assert s.n == 1 and s.stdev == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            describe([])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            mean([[1.0, 2.0]])  # type: ignore[list-item]

    def test_str_mentions_fields(self):
        assert "mean=" in str(describe([1.0, 2.0]))
