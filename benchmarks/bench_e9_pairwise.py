"""E9 — Pairwise better/equal/worse percentages.

Expected shape: the improved scheduler is better-or-equal to HEFT on
100% of instances (superset search), strictly better on a majority, and
better than every other baseline on a clear majority.
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e9, e9_data
from repro.schedulers.registry import get_scheduler


def test_e9_shape(quick):
    pairs = e9_data(quick)
    print("\n" + e9(quick))
    better, equal, worse = pairs[("IMP", "HEFT")]
    # Never worse than HEFT; strictly better on most instances.
    assert worse == 0.0
    assert better >= 50.0
    # Clear majority against every baseline in the wide line-up.
    for other in W.COMPARED_WIDE:
        if other == "IMP":
            continue
        b, e, w = pairs[("IMP", other)]
        assert b + e >= 50.0, other

    # Percentages are symmetric and sum to 100.
    for (a, b), (x, y, z) in pairs.items():
        assert abs(x + y + z - 100.0) < 1e-6
        rx, ry, rz = pairs[(b, a)]
        assert abs(x - rz) < 1e-9 and abs(z - rx) < 1e-9


def test_e9_benchmark_batch(benchmark, quick):
    # Time a small paired batch: all wide-line-up schedulers on one
    # instance (the unit of work behind each table cell).
    rng = np.random.default_rng(209)
    inst = W.random_instance(rng, num_tasks=80)

    def run_all():
        return [get_scheduler(n).schedule(inst).makespan for n in W.COMPARED_WIDE]

    spans = benchmark(run_all)
    assert min(spans) > 0
