"""Tests for repro.machine.processor."""

import pytest

from repro.exceptions import MachineError
from repro.machine.processor import Processor


class TestProcessor:
    def test_defaults(self):
        p = Processor(0)
        assert p.speed == 1.0
        assert p.name == "P0"

    def test_custom_name(self):
        assert Processor(0, name="gpu0").name == "gpu0"

    def test_exec_time(self):
        assert Processor(0, speed=2.0).exec_time(10.0) == pytest.approx(5.0)

    def test_speed_coerced_to_float(self):
        assert isinstance(Processor(0, speed=2).speed, float)

    @pytest.mark.parametrize("speed", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_speed(self, speed):
        with pytest.raises(MachineError):
            Processor(0, speed=speed)

    def test_frozen(self):
        p = Processor(0)
        with pytest.raises(AttributeError):
            p.speed = 2.0  # type: ignore[misc]
