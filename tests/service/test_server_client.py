"""End-to-end TCP tests: real server, real client, real process pool.

Each scenario boots a daemon on an ephemeral port inside the test's own
event loop, exercises the HTTP surface through :class:`ServiceClient`
(plus raw sockets for the malformed cases) and shuts down cleanly — no
fixed ports, no leftover listeners.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.bench import workloads as W
from repro.service import (
    EngineConfig,
    RequestError,
    ScheduleServer,
    SchedulingEngine,
    ServiceClient,
)
from repro.utils.rng import as_generator


def _instance(seed: int = 3, num_tasks: int = 12):
    return W.random_instance(as_generator(seed), num_tasks=num_tasks, num_procs=3)


async def _boot(workers: int = 2, **config):
    engine = SchedulingEngine(EngineConfig(workers=workers, **config))
    server = ScheduleServer(engine, port=0)
    await server.start()
    return server, ServiceClient(port=server.port, request_timeout=60.0)


async def _raw_http(port: int, blob: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(blob)
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), 10.0)
    writer.close()
    await writer.wait_closed()
    return raw


def test_schedule_cold_then_cache_hit_over_tcp():
    async def scenario():
        server, client = await _boot(workers=2)
        try:
            inst = _instance()
            cold = await client.schedule(inst, alg="HEFT")
            warm = await client.schedule(inst, alg="HEFT")
            assert not cold.cache_hit and warm.cache_hit
            assert warm.makespan == cold.makespan
            assert warm.placements == cold.placements
            # The result rebuilds into a valid schedule locally.
            rebuilt = warm.to_schedule(inst.machine)
            assert rebuilt.makespan == warm.makespan
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_exact_body_and_canonical_cache_layers():
    """Byte-identical resubmits hit the fast path; a re-serialised but
    semantically equal request still hits through the fingerprint."""

    async def scenario():
        server, client = await _boot(workers=0)
        try:
            from repro.instance_io import instance_to_json
            from repro.service.protocol import make_request_doc

            inst = _instance()
            doc = make_request_doc(json.loads(instance_to_json(inst)), "HEFT")
            body = json.dumps(doc).encode()
            blob = (
                b"POST /v1/schedule HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
            )
            cold = json.loads((await _raw_http(server.port, blob)).split(b"\r\n\r\n", 1)[1])
            warm = json.loads((await _raw_http(server.port, blob)).split(b"\r\n\r\n", 1)[1])
            assert cold["result"]["cache_hit"] is False
            assert warm["result"]["cache_hit"] is True
            assert warm["result"]["placements"] == cold["result"]["placements"]
            # Same document, different serialisation (sorted keys): the
            # exact-body map misses, the canonical fingerprint hits.
            body2 = json.dumps(doc, sort_keys=True, indent=1).encode()
            assert body2 != body
            blob2 = (
                b"POST /v1/schedule HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body2), body2)
            )
            alt = json.loads((await _raw_http(server.port, blob2)).split(b"\r\n\r\n", 1)[1])
            assert alt["result"]["cache_hit"] is True
            assert alt["result"]["placements"] == cold["result"]["placements"]
            stats = await client.stats()
            assert stats.requests == 3
            assert stats.cache_hits == 2 and stats.cache_misses == 1
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_stats_and_metrics_endpoints():
    async def scenario():
        server, client = await _boot(workers=0)
        try:
            inst = _instance()
            await client.schedule(inst, alg="CPOP")
            await client.schedule(inst, alg="CPOP")
            stats = await client.stats()
            assert stats.requests == 2
            assert stats.cache_hits == 1 and stats.cache_misses == 1
            assert stats.p50_ms > 0.0
            text = await client.metrics_text()
            assert "repro_service_requests_total 2" in text
            assert "repro_service_cache_hits_total 1" in text
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_health_endpoint():
    async def scenario():
        server, client = await _boot(workers=0)
        try:
            assert await client.health() is True
        finally:
            await server.stop()
        assert await client.health() is False  # daemon gone

    asyncio.run(scenario())


def test_unknown_scheduler_is_400():
    async def scenario():
        server, client = await _boot(workers=0)
        try:
            with pytest.raises(RequestError, match="unknown scheduler"):
                await client.schedule(_instance(), alg="NOPE")
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_malformed_json_is_400():
    async def scenario():
        server, client = await _boot(workers=0)
        try:
            body = b"this is not json"
            blob = (
                b"POST /v1/schedule HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
            )
            raw = await _raw_http(server.port, blob)
            assert raw.startswith(b"HTTP/1.1 400")
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_unknown_route_is_404_and_wrong_method_405():
    async def scenario():
        server, client = await _boot(workers=0)
        try:
            raw = await _raw_http(server.port, b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n")
            assert raw.startswith(b"HTTP/1.1 404")
            raw = await _raw_http(server.port, b"GET /v1/schedule HTTP/1.1\r\nHost: x\r\n\r\n")
            assert raw.startswith(b"HTTP/1.1 405")
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_request_document_timeout_validation():
    async def scenario():
        server, client = await _boot(workers=0)
        try:
            doc = {"protocol": "repro-service-v1", "alg": "HEFT", "instance": {},
                   "timeout": -1}
            body = json.dumps(doc).encode()
            blob = (
                b"POST /v1/schedule HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: %d\r\nContent-Type: application/json\r\n\r\n%s"
                % (len(body), body)
            )
            raw = await _raw_http(server.port, blob)
            assert raw.startswith(b"HTTP/1.1 400")
        finally:
            await server.stop()

    asyncio.run(scenario())


def test_shutdown_endpoint_drains_and_exits():
    async def scenario():
        server, client = await _boot(workers=0)
        inst = _instance()
        await client.schedule(inst, alg="HEFT")
        waiter = asyncio.create_task(server.serve_until_shutdown())
        await client.shutdown()
        await asyncio.wait_for(waiter, timeout=30.0)
        assert await client.health() is False

    asyncio.run(scenario())


def test_concurrent_mixed_load_over_tcp():
    async def scenario():
        server, client = await _boot(workers=2, queue_depth=64)
        try:
            instances = [_instance(seed) for seed in range(4)]
            jobs = [(i, alg) for i in instances for alg in ("HEFT", "CPOP")] * 2
            results = await asyncio.gather(
                *[client.schedule(i, alg=a) for i, a in jobs]
            )
            assert len(results) == 16
            stats = await client.stats()
            # Every request is a hit or a miss; coalesced requests are
            # misses that piggybacked on an in-flight computation.  Only
            # 8 unique (instance, alg) pairs ever reach a worker.
            assert stats.cache_hits + stats.cache_misses == 16
            assert stats.cache_misses - stats.coalesced == 8
            by_key = {}
            for (i, alg), res in zip(jobs, results):
                by_key.setdefault((id(i), alg), set()).add(
                    (res.makespan, res.placements)
                )
            assert all(len(v) == 1 for v in by_key.values()), "repeats must be identical"
        finally:
            await server.stop()

    asyncio.run(scenario())
