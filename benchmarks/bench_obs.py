"""No-op tracer overhead benchmark for the observability layer.

The obs layer's core promise is that *not* tracing costs nothing: the
module-default :class:`~repro.obs.NullTracer` reduces every hot-path
hook to one attribute read (``tracer.enabled``) plus, per phase, a no-op
context manager.  This benchmark measures that claim on the two hottest
instrumented paths and writes ``BENCH_obs.json`` at the repo root:

* ``decode_batch`` — the GA fitness loop of the compiled core — against
  a verbatim replica of its body with the tracer hooks deleted;
* ``HEFT().schedule()`` against a verbatim replica of the
  ``ListScheduler.schedule`` loop with the tracer hooks deleted.

Both comparisons take best-of-``ROUNDS`` timings (noise suppression)
and hard-assert bit-identical outputs.  The enabled-tracer cost is also
recorded, informationally — tracing *on* is allowed to cost something.

Run directly to regenerate the JSON:

    PYTHONPATH=src python benchmarks/bench_obs.py

The pytest wrapper re-checks bit-identity as a hard gate and the no-op
overhead against a soft threshold (CI boxes are noisy; the committed
JSON records the <2% measured on a quiet machine).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.bench import workloads as W
from repro.obs import NULL_TRACER, Tracer, get_tracer, use_tracer
from repro.schedule.schedule import Schedule
from repro.schedulers.heft import HEFT
from repro.schedulers.meta.decoder import compiled_decoder

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_obs.json"

NUM_TASKS = 60
NUM_PROCS = 8
POP = 32
ROUNDS = 30


def _best_of(fn, rounds: int = ROUNDS) -> float:
    """Minimum wall time of ``fn`` over ``rounds`` runs (seconds)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _instance(seed: int = 17):
    return W.random_instance(
        np.random.default_rng(seed), num_tasks=NUM_TASKS, num_procs=NUM_PROCS
    )


def _bench_decode_overhead() -> dict:
    inst = _instance()
    compiled = compiled_decoder(inst)
    assert compiled is not None
    population = np.random.default_rng(23).integers(
        0, NUM_PROCS, size=(POP, NUM_TASKS)
    )
    decode = compiled._decode

    def raw():
        # decode_batch's body with the tracer hooks deleted.
        rows = np.asarray(population)
        return np.array([decode(g) for g in rows.tolist()], dtype=float)

    def noop():
        return compiled.decode_batch(population)

    assert get_tracer() is NULL_TRACER
    baseline = raw()
    assert np.array_equal(noop(), baseline)  # hard gate: bit-identical
    raw_s = _best_of(raw)
    noop_s = _best_of(noop)

    tracer = Tracer()
    with use_tracer(tracer):
        assert np.array_equal(compiled.decode_batch(population), baseline)
        enabled_s = _best_of(lambda: compiled.decode_batch(population), rounds=10)

    return {
        "path": "compiled.decode_batch",
        "num_tasks": NUM_TASKS,
        "population": POP,
        "raw_us_per_batch": raw_s * 1e6,
        "noop_us_per_batch": noop_s * 1e6,
        "noop_overhead_pct": (noop_s / raw_s - 1.0) * 100.0,
        "enabled_overhead_pct": (enabled_s / raw_s - 1.0) * 100.0,
        "bit_identical": True,
    }


def _heft_raw(scheduler: HEFT, inst) -> Schedule:
    """``ListScheduler.schedule`` with the tracer hooks deleted."""
    schedule = Schedule(inst.machine, name=f"{scheduler.name}:{inst.name}")
    order = scheduler.priority_order(inst)
    if set(order) != set(inst.dag.tasks()) or len(order) != inst.num_tasks:
        raise AssertionError("priority order does not cover the instance")
    for task in order:
        placed = scheduler.place(schedule, inst, task)
        schedule.add(task, placed.proc, placed.start, placed.end - placed.start)
    return schedule


def _bench_heft_overhead() -> dict:
    inst = _instance(seed=29)
    scheduler = HEFT()

    assert get_tracer() is NULL_TRACER
    baseline = _heft_raw(scheduler, inst)
    noop_schedule = scheduler.schedule(inst)
    assert noop_schedule.makespan == baseline.makespan  # hard gate
    raw_s = _best_of(lambda: _heft_raw(scheduler, inst))
    noop_s = _best_of(lambda: scheduler.schedule(inst))

    tracer = Tracer()
    with use_tracer(tracer):
        assert scheduler.schedule(inst).makespan == baseline.makespan
        enabled_s = _best_of(lambda: scheduler.schedule(inst), rounds=10)

    return {
        "path": "HEFT.schedule",
        "num_tasks": NUM_TASKS,
        "num_procs": NUM_PROCS,
        "raw_ms_per_schedule": raw_s * 1e3,
        "noop_ms_per_schedule": noop_s * 1e3,
        "noop_overhead_pct": (noop_s / raw_s - 1.0) * 100.0,
        "enabled_overhead_pct": (enabled_s / raw_s - 1.0) * 100.0,
        "identical_makespan": True,
    }


def run_obs_bench() -> dict:
    decode = _bench_decode_overhead()
    heft = _bench_heft_overhead()
    return {
        "decode": decode,
        "heft": heft,
        "noop_overhead_pct_max": max(
            decode["noop_overhead_pct"], heft["noop_overhead_pct"]
        ),
    }


def test_obs_noop_overhead_gate():
    """Bit-identity is a hard gate; the overhead ceiling is soft (10% in
    CI vs the <2% recorded in BENCH_obs.json on a quiet machine)."""
    report = run_obs_bench()
    assert report["decode"]["bit_identical"]
    assert report["heft"]["identical_makespan"]
    assert report["noop_overhead_pct_max"] < 10.0, report


def main() -> None:
    report = run_obs_bench()
    OUT.write_text(json.dumps(report, indent=2) + "\n")
    d, h = report["decode"], report["heft"]
    print(
        f"decode_batch ({d['num_tasks']}t x {d['population']} genomes): "
        f"raw {d['raw_us_per_batch']:8.1f}us  noop {d['noop_us_per_batch']:8.1f}us "
        f"({d['noop_overhead_pct']:+.2f}%)  enabled {d['enabled_overhead_pct']:+.1f}%"
    )
    print(
        f"HEFT.schedule ({h['num_tasks']}t/{h['num_procs']}p): "
        f"raw {h['raw_ms_per_schedule']:7.3f}ms  noop {h['noop_ms_per_schedule']:7.3f}ms "
        f"({h['noop_overhead_pct']:+.2f}%)  enabled {h['enabled_overhead_pct']:+.1f}%"
    )
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
