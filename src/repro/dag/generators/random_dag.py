"""Parametric random DAGs following the TPDS-2002 evaluation protocol.

The generator is controlled by the knobs every paper in the genre
sweeps:

* ``num_tasks`` — graph size,
* ``shape`` (α) — expected depth is ``sqrt(n)/α`` and expected width per
  level ``α*sqrt(n)``: α < 1 gives long thin graphs, α > 1 short fat
  ones,
* ``out_degree`` — maximum edges a task sends to later levels,
* ``ccr`` — exact communication-to-computation ratio of the result,
* ``avg_cost`` — mean nominal task cost.

Structure guarantee: every non-entry task has at least one parent in an
earlier level, so the graph is a single connected scheduling problem
(no free-floating islands beyond the entry level).
"""

from __future__ import annotations

import math

from repro.dag.generators.costs import scale_ccr
from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


def random_dag(
    num_tasks: int,
    shape: float = 1.0,
    out_degree: int = 4,
    ccr: float = 1.0,
    avg_cost: float = 10.0,
    seed: SeedLike = None,
    name: str | None = None,
) -> TaskDAG:
    """Generate one random weighted DAG (see module docstring).

    Raises :class:`ConfigurationError` on nonsensical parameters.  The
    graph is deterministic for a given seed.
    """
    if num_tasks < 1:
        raise ConfigurationError(f"num_tasks must be >= 1, got {num_tasks}")
    if shape <= 0:
        raise ConfigurationError(f"shape must be > 0, got {shape}")
    if out_degree < 1:
        raise ConfigurationError(f"out_degree must be >= 1, got {out_degree}")
    if ccr < 0:
        raise ConfigurationError(f"ccr must be >= 0, got {ccr}")
    if avg_cost <= 0:
        raise ConfigurationError(f"avg_cost must be > 0, got {avg_cost}")

    rng = as_generator(seed)
    dag = TaskDAG(name or f"random-n{num_tasks}-a{shape:g}")

    # ---- structure: levels ------------------------------------------
    mean_depth = max(1.0, math.sqrt(num_tasks) / shape)
    mean_width = max(1.0, math.sqrt(num_tasks) * shape)
    levels: list[list[int]] = []
    remaining = num_tasks
    next_id = 0
    while remaining > 0:
        # Uniform width in [1, 2*mean_width), clipped to what's left and,
        # if this might be the last level, to exactly what's left.
        width = int(rng.integers(1, max(2, int(2 * mean_width))))
        width = min(width, remaining)
        if len(levels) + 1 >= int(2 * mean_depth) and remaining <= 2 * mean_width:
            width = remaining
        level = list(range(next_id, next_id + width))
        next_id += width
        remaining -= width
        levels.append(level)

    for level in levels:
        for tid in level:
            dag.add_task(Task(id=tid, cost=float(rng.uniform(1e-6, 2.0 * avg_cost))))

    # ---- structure: edges -------------------------------------------
    # Each non-entry task pulls one mandatory parent from the previous
    # level (connectivity), then each task fans out up to `out_degree`
    # extra children in strictly later levels.
    for li in range(1, len(levels)):
        prev = levels[li - 1]
        for tid in levels[li]:
            parent = int(rng.choice(prev))
            dag.add_edge(parent, tid, data=float(rng.uniform(0.0, 2.0 * avg_cost)))

    flat_after: list[list[int]] = []
    suffix: list[int] = []
    for level in reversed(levels):
        flat_after.append(list(suffix))
        suffix = level + suffix
    flat_after.reverse()

    for li, level in enumerate(levels):
        candidates = flat_after[li]
        if not candidates:
            continue
        for tid in level:
            extra = int(rng.integers(0, out_degree + 1))
            if extra == 0:
                continue
            picks = rng.choice(len(candidates), size=min(extra, len(candidates)), replace=False)
            for k in picks:
                child = candidates[int(k)]
                if not dag.has_edge(tid, child):
                    dag.add_edge(tid, child, data=float(rng.uniform(0.0, 2.0 * avg_cost)))

    if dag.num_edges == 0:
        return dag  # single-level graph: CCR is vacuous without edges
    return scale_ccr(dag, ccr)
