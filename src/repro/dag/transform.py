"""Task-graph transformations: coarsening, pruning, extraction.

Utilities for preparing graphs before scheduling:

* :func:`merge_tasks` — contract a task group into one coarser task
  (granularity control: merging fine-grained tasks amortises scheduling
  and communication overhead),
* :func:`zero_small_edges` — drop communication below a threshold (noise
  filtering for profiled graphs),
* :func:`extract_subgraph` — the induced sub-DAG of a task subset,
* :func:`summarize` — a one-paragraph statistics report.
"""

from __future__ import annotations

from typing import Iterable

from repro.dag.analysis import critical_path_length, parallelism_profile
from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import CycleError, GraphError, UnknownTaskError
from repro.types import TaskId


def merge_tasks(dag: TaskDAG, group: Iterable[TaskId], new_id: TaskId) -> TaskDAG:
    """Contract ``group`` into a single task ``new_id``.

    The merged task's cost is the group's total cost; edges between
    group members disappear (their data moves through local memory);
    parallel edges to/from the outside aggregate their data volumes.
    Raises :class:`CycleError` if the contraction would create a cycle
    (i.e. a path leaves the group and re-enters it) and
    :class:`GraphError` if ``new_id`` collides with a surviving task.
    """
    members = set(group)
    if not members:
        raise GraphError("merge group must be non-empty")
    for t in members:
        if not dag.has_task(t):
            raise UnknownTaskError(t)
    if dag.has_task(new_id) and new_id not in members:
        raise GraphError(f"new id {new_id!r} collides with an existing task")

    # Contraction is legal iff no path leaves the group and returns.
    # Check: for every outside task reachable from the group, it must not
    # reach the group again.
    order = dag.topological_order()
    reaches_from_group: set[TaskId] = set()
    for t in order:
        if t in members or any(p in members or p in reaches_from_group for p in dag.predecessors(t)):
            if t not in members:
                reaches_from_group.add(t)
    for outside in reaches_from_group:
        for child in dag.successors(outside):
            if child in members:
                raise CycleError(
                    f"merging would create a cycle: path re-enters the group via {outside!r} -> {child!r}"
                )

    merged = TaskDAG(dag.name)
    total_cost = sum(dag.cost(t) for t in members)
    for t in order:
        if t in members:
            continue
        old = dag.task(t)
        merged.add_task(Task(id=t, cost=old.cost, name=old.name, attrs=dict(old.attrs)))
    merged.add_task(Task(id=new_id, cost=total_cost, name=str(new_id)))

    in_data: dict[TaskId, float] = {}
    out_data: dict[TaskId, float] = {}
    for u, v in dag.edges():
        d = dag.data(u, v)
        if u in members and v in members:
            continue
        if u in members:
            out_data[v] = out_data.get(v, 0.0) + d
        elif v in members:
            in_data[u] = in_data.get(u, 0.0) + d
        else:
            merged.add_edge(u, v, data=d)
    for u, d in in_data.items():
        merged.add_edge(u, new_id, data=d)
    for v, d in out_data.items():
        merged.add_edge(new_id, v, data=d)
    return merged


def zero_small_edges(dag: TaskDAG, threshold: float) -> TaskDAG:
    """Copy of ``dag`` with every edge carrying < ``threshold`` data set
    to zero volume (the dependency itself is preserved)."""
    if threshold < 0:
        raise GraphError(f"threshold must be >= 0, got {threshold}")
    clone = dag.copy()
    for u, v in clone.edges():
        if clone.data(u, v) < threshold:
            clone.set_data(u, v, 0.0)
    return clone


def extract_subgraph(dag: TaskDAG, tasks: Iterable[TaskId], name: str | None = None) -> TaskDAG:
    """The sub-DAG induced by ``tasks`` (edges with both ends inside)."""
    keep = set(tasks)
    for t in keep:
        if not dag.has_task(t):
            raise UnknownTaskError(t)
    sub = TaskDAG(name or f"{dag.name}-sub")
    for t in dag.topological_order():
        if t in keep:
            old = dag.task(t)
            sub.add_task(Task(id=t, cost=old.cost, name=old.name, attrs=dict(old.attrs)))
    for u, v in dag.edges():
        if u in keep and v in keep:
            sub.add_edge(u, v, data=dag.data(u, v))
    return sub


def summarize(dag: TaskDAG) -> str:
    """One-paragraph statistics report of a task graph."""
    profile = parallelism_profile(dag)
    cp = critical_path_length(dag)
    cp_nocomm = critical_path_length(dag, include_comm=False)
    lines = [
        f"graph {dag.name!r}: {dag.num_tasks} tasks, {dag.num_edges} edges",
        f"  total work {dag.total_cost():g}, total data {dag.total_data():g} "
        f"(CCR {dag.ccr():.3f})",
        f"  depth {len(profile)}, max width {max(profile) if profile else 0}, "
        f"avg width {dag.num_tasks / len(profile):.2f}" if profile else "  empty",
        f"  critical path {cp:g} with comm, {cp_nocomm:g} without "
        f"(ideal parallelism {dag.total_cost() / cp_nocomm:.2f})"
        if cp_nocomm > 0
        else "  zero-length critical path",
        f"  entries {len(dag.entry_tasks())}, exits {len(dag.exit_tasks())}",
    ]
    return "\n".join(lines)
