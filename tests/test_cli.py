"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.dag import io as dio
from repro.dag.generators import random_dag


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as e:
            build_parser().parse_args(["--version"])
        assert e.value.code == 0


class TestList:
    def test_lists_experiments_and_schedulers(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E15" in out
        assert "HEFT" in out and "IMP" in out


class TestSchedule:
    def test_schedule_json_dag(self, tmp_path, capsys):
        dag = random_dag(20, seed=1)
        path = tmp_path / "g.json"
        dio.save_json(dag, path)
        rc = main(["schedule", "--dag", str(path), "--alg", "HEFT", "--procs", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "SLR" in out

    def test_schedule_stg_dag(self, tmp_path, capsys):
        dag = random_dag(15, seed=2)
        path = tmp_path / "g.stg"
        dio.save_stg(dag, path)
        rc = main(["schedule", "--dag", str(path), "--alg", "IMP", "--gantt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "schedule" in out  # gantt header

    def test_unknown_algorithm_fails(self, tmp_path):
        dag = random_dag(10, seed=3)
        path = tmp_path / "g.json"
        dio.save_json(dag, path)
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["schedule", "--dag", str(path), "--alg", "NOPE"])


class TestSimulateRenderExplain:
    @pytest.fixture
    def dag_path(self, tmp_path):
        dag = random_dag(20, seed=9)
        path = tmp_path / "g.json"
        dio.save_json(dag, path)
        return str(path)

    def test_simulate_exact(self, dag_path, capsys):
        assert main(["simulate", "--dag", dag_path, "--alg", "HEFT"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out and "1.0000" in out

    def test_simulate_noise_and_contention(self, dag_path, capsys):
        rc = main(["simulate", "--dag", dag_path, "--alg", "HEFT",
                   "--noise", "0.3", "--contention"])
        assert rc == 0
        assert "simulated makespan" in capsys.readouterr().out

    def test_render(self, dag_path, tmp_path, capsys):
        out_path = tmp_path / "s.svg"
        assert main(["render", "--dag", dag_path, "--out", str(out_path)]) == 0
        assert out_path.read_text().startswith("<svg")

    def test_explain(self, dag_path, capsys):
        assert main(["explain", "--dag", dag_path, "--alg", "HEFT"]) == 0
        out = capsys.readouterr().out
        assert "dominant path" in out and "utilisation" in out

    def test_compare_unknown_suite(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["compare", "--suite", "nope"])

    def test_sensitivity(self, capsys):
        rc = main(["sensitivity", "--alg", "HEFT", "--tasks", "25",
                   "--procs", "3", "--reps", "1", "--step", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "elasticity" in out and "dominant parameter" in out

    def test_report_single(self, tmp_path, capsys):
        out_path = tmp_path / "r.md"
        assert main(["report", "--out", str(out_path), "--id", "E13"]) == 0
        assert "E13" in out_path.read_text()


class TestDemoAndExperiment:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "HEFT" in out and "IMP" in out

    def test_experiment_quick(self, capsys):
        assert main(["experiment", "E13"]) == 0
        out = capsys.readouterr().out
        assert "optimality gap" in out

    def test_unknown_experiment(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["experiment", "E99"])


class TestTrace:
    @pytest.fixture
    def dag_path(self, tmp_path):
        dag = random_dag(12, seed=4)
        path = tmp_path / "g.json"
        dio.save_json(dag, path)
        return str(path)

    def test_trace_chrome_to_stdout(self, dag_path, capsys):
        import json

        assert main(["trace", "heft", dag_path, "--format", "chrome"]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = {e["name"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        # Ranking, placement and per-task insertion are all covered.
        assert {"sched.run", "sched.rank", "sched.place", "sched.insert"} <= names
        inserts = [e for e in doc["traceEvents"] if e["name"] == "sched.insert"]
        assert len(inserts) == 12

    def test_trace_writes_jsonl_file(self, dag_path, tmp_path, capsys):
        import json

        out = tmp_path / "trace.jsonl"
        assert main(["trace", "HEFT", dag_path, "--out", str(out)]) == 0
        summary = capsys.readouterr().out
        assert "wrote" in summary and "spans" in summary
        first = json.loads(out.read_text().splitlines()[0])
        assert first["type"] == "span" and first["name"] == "sched.run"

    def test_trace_accepts_instance_document(self, tmp_path, capsys):
        import json

        from repro.instance import make_instance
        from repro.instance_io import instance_to_json

        instance = make_instance(random_dag(8, seed=6), num_procs=3, seed=6)
        path = tmp_path / "inst.json"
        path.write_text(instance_to_json(instance))
        assert main(["trace", "cpop", str(path), "--format", "chrome"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert any(e["name"] == "sched.run" for e in doc["traceEvents"])

    def test_schedule_trace_out_flag(self, dag_path, tmp_path, capsys):
        import json

        out = tmp_path / "sched.json"
        rc = main(["schedule", "--dag", dag_path, "--alg", "IMP",
                   "--trace-out", str(out)])
        assert rc == 0
        assert "trace" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert any(e["name"] == "imp.pass" for e in doc["traceEvents"])

    def test_tracing_does_not_change_the_reported_makespan(self, dag_path,
                                                           tmp_path, capsys):
        assert main(["schedule", "--dag", dag_path, "--alg", "HEFT"]) == 0
        plain = capsys.readouterr().out
        out = tmp_path / "t.json"
        assert main(["schedule", "--dag", dag_path, "--alg", "HEFT",
                     "--trace-out", str(out)]) == 0
        traced = capsys.readouterr().out
        line = [l for l in plain.splitlines() if l.startswith("makespan")]
        assert line and line[0] in traced
