"""Shared type aliases used across the :mod:`repro` package.

The library identifies tasks and processors by small hashable ids
(typically ``int`` or ``str``).  Centralising the aliases keeps signatures
consistent and lets downstream users import one canonical vocabulary.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence, Tuple, Union

#: Identifier of a task (node of the DAG).  Any hashable is accepted, the
#: built-in generators use consecutive integers.
TaskId = Hashable

#: Identifier of a processor.  The built-in machine builders use
#: consecutive integers starting at 0.
ProcId = Hashable

#: A directed edge of the task graph.
Edge = Tuple[TaskId, TaskId]

#: Per-processor execution costs of one task: ``costs[p]`` is the
#: estimated execution time of the task on processor ``p``.
CostVector = Mapping[ProcId, float]

#: Numeric scalar accepted by cost parameters.
Number = Union[int, float]

#: A sequence of task ids, e.g. a priority order or a critical path.
TaskPath = Sequence[TaskId]
