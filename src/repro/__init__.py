"""repro — static task scheduling for heterogeneous and homogeneous
computing systems.

A full reproduction framework for *Improving Static Task Scheduling in
Heterogeneous and Homogeneous Computing Systems* (Yang, Lee & Chung,
ICPP 2007): weighted task DAGs and generators, machine/ETC models, a
shared list-scheduling substrate, the classic baselines (HEFT, CPOP,
HCPT, PETS, DLS, ETF, MCP, HLFET, TDS), the improved scheduler that is
the paper's contribution, a discrete-event execution simulator, and a
bench harness that regenerates every evaluation figure and table.

Quickstart
----------
>>> from repro import TaskDAG, make_instance, HEFT, ImprovedScheduler, slr
>>> dag = TaskDAG.from_edges([("a", "b", 3.0), ("a", "c", 1.0), ("b", "d", 2.0),
...                           ("c", "d", 2.0)], costs={"a": 2, "b": 4, "c": 3, "d": 2})
>>> inst = make_instance(dag, num_procs=3, heterogeneity=0.5, seed=7)
>>> heft = HEFT().schedule(inst)
>>> imp = ImprovedScheduler().schedule(inst)
>>> imp.makespan <= heft.makespan or abs(imp.makespan - heft.makespan) < 1e-9
True
"""

from repro._version import __version__
from repro.compiled import CompiledInstance, compile_instance
from repro.dag import Task, TaskDAG
from repro.instance import (
    Instance,
    homogeneous_instance,
    make_instance,
    speed_scaled_instance,
)
from repro.machine import (
    ETCMatrix,
    Machine,
    Processor,
    etc_from_speeds,
    generate_etc,
)
from repro.schedule import (
    Schedule,
    ScheduledTask,
    efficiency,
    makespan,
    slr,
    speedup,
    validate,
)
from repro.schedulers import (
    CPOP,
    DLS,
    DSC,
    ETF,
    HCPT,
    HEFT,
    HLFET,
    MCP,
    PETS,
    TDS,
    BranchAndBoundScheduler,
    GeneticScheduler,
    LinearClustering,
    Scheduler,
    SimulatedAnnealingScheduler,
    all_scheduler_names,
    get_scheduler,
)
from repro.core import (
    DuplicationScheduler,
    ImprovedConfig,
    ImprovedScheduler,
    LookaheadScheduler,
)

__all__ = [
    "__version__",
    "Task",
    "TaskDAG",
    "Instance",
    "CompiledInstance",
    "compile_instance",
    "make_instance",
    "homogeneous_instance",
    "speed_scaled_instance",
    "Machine",
    "Processor",
    "ETCMatrix",
    "generate_etc",
    "etc_from_speeds",
    "Schedule",
    "ScheduledTask",
    "validate",
    "makespan",
    "slr",
    "speedup",
    "efficiency",
    "Scheduler",
    "HEFT",
    "CPOP",
    "HCPT",
    "PETS",
    "DLS",
    "ETF",
    "MCP",
    "HLFET",
    "TDS",
    "DSC",
    "LinearClustering",
    "SimulatedAnnealingScheduler",
    "GeneticScheduler",
    "BranchAndBoundScheduler",
    "get_scheduler",
    "all_scheduler_names",
    "ImprovedScheduler",
    "ImprovedConfig",
    "LookaheadScheduler",
    "DuplicationScheduler",
]
