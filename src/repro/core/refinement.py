"""Makespan-monotone refinement post-pass (improvement 4).

After the list pass, tasks are revisited in decreasing start-time order;
each is tentatively removed and re-inserted at the placement minimising
its finish time, subject to every already-scheduled consumer still
receiving its data on time.  A move is accepted only when the task's
finish strictly decreases, so the makespan never increases and the pass
reaches a fixed point in finitely many sweeps.

Tasks that own duplicates are skipped (their copies collectively feed
consumers and moving the primary could starve one); duplicates
themselves are never moved.
"""

from __future__ import annotations

from repro.instance import Instance
from repro.kernels import kernels_enabled
from repro.schedule.schedule import Schedule
from repro.schedulers.base import Placement, placement_on
from repro.types import TaskId

_EPS = 1e-12
_TOL = 1e-9


def _children_deadline_ok(
    schedule: Schedule,
    instance: Instance,
    task: TaskId,
    new_proc,
    new_end: float,
) -> bool:
    """Would every consumer copy still get ``task``'s data in time?

    A consumer is safe if data from the *new* primary placement — or from
    any surviving duplicate of ``task`` — arrives by its start.
    """
    duplicates = [c for c in schedule.copies(task) if c.duplicate] if task in schedule else []
    consts = None
    if kernels_enabled():
        consts = instance.kernel.out_const
    if consts is not None:
        for child in instance.successors_of(task):
            if child not in schedule:
                continue
            const = consts[task][child]
            for child_copy in schedule.copies(child):
                dst = child_copy.proc
                arrival = new_end if new_proc == dst else new_end + const
                for dup in duplicates:
                    cand = dup.end if dup.proc == dst else dup.end + const
                    if cand < arrival:
                        arrival = cand
                if arrival > child_copy.start + _TOL:
                    return False
        return True
    for child in instance.successors_of(task):
        if child not in schedule:
            continue
        for child_copy in schedule.copies(child):
            arrival = new_end + instance.comm_time(task, child, new_proc, child_copy.proc)
            for dup in duplicates:
                arrival = min(
                    arrival,
                    dup.end + instance.comm_time(task, child, dup.proc, child_copy.proc),
                )
            if arrival > child_copy.start + _TOL:
                return False
    return True


def refine_schedule(
    schedule: Schedule,
    instance: Instance,
    max_rounds: int = 2,
) -> int:
    """Refine ``schedule`` in place; returns the number of accepted moves.

    Each round sweeps every task once (latest start first).  Rounds stop
    early when a full sweep accepts nothing.
    """
    dag = instance.dag
    moves = 0
    for _ in range(max_rounds):
        changed = False
        order = sorted(
            dag.tasks(),
            key=lambda t: (-schedule.entry(t).start, str(t)),
        )
        for task in order:
            copies = schedule.copies(task)
            if any(c.duplicate for c in copies):
                continue  # duplicated tasks are pinned (see module doc)
            old = schedule.entry(task)
            schedule.remove(task)
            best = None
            ready_vec = (
                instance.kernel.ready_times(schedule, task)
                if kernels_enabled()
                else None
            )
            for j, proc in enumerate(instance.machine.proc_ids()):
                if ready_vec is not None:
                    duration = instance.exec_time(task, proc)
                    start = schedule.timeline(proc).find_slot(
                        float(ready_vec[j]), duration, insertion=True
                    )
                    cand = Placement(proc=proc, start=start, end=start + duration)
                else:
                    cand = placement_on(schedule, instance, task, proc, insertion=True)
                if not _children_deadline_ok(schedule, instance, task, proc, cand.end):
                    continue
                if best is None or cand.end < best.end - _EPS:
                    best = cand
            # The old placement is always feasible, so best exists and is
            # no worse than old; accept only strict improvement.
            if best is not None and best.end < old.end - _TOL:
                schedule.add(task, best.proc, best.start, best.end - best.start)
                moves += 1
                changed = True
            else:
                schedule.add(task, old.proc, old.start, old.end - old.start)
        if not changed:
            break
    return moves
