"""Tests for the naive baselines and the TDS duplication scheduler."""

import pytest

from repro.dag.generators import out_tree_dag, random_dag
from repro.instance import homogeneous_instance, make_instance
from repro.schedule.validation import validate
from repro.schedulers.baselines import RandomScheduler, RoundRobinScheduler
from repro.schedulers.duplication_tds import TDS


class TestRoundRobin:
    def test_feasible(self, topcuoglu_instance):
        s = RoundRobinScheduler().schedule(topcuoglu_instance)
        validate(s, topcuoglu_instance)

    def test_cycles_processors(self, diamond_dag):
        inst = homogeneous_instance(diamond_dag, num_procs=4, bandwidth=1e9)
        s = RoundRobinScheduler().schedule(inst)
        # 4 tasks over 4 procs: every processor used exactly once.
        assert sorted(s.assignment().values()) == [0, 1, 2, 3]

    def test_reusable_across_instances(self, diamond_dag):
        inst = homogeneous_instance(diamond_dag, num_procs=2)
        sched = RoundRobinScheduler()
        a = sched.schedule(inst)
        b = sched.schedule(inst)
        assert a.assignment() == b.assignment()  # counter resets per run


class TestRandomScheduler:
    def test_feasible_and_deterministic(self, topcuoglu_instance):
        a = RandomScheduler(seed=9).schedule(topcuoglu_instance)
        b = RandomScheduler(seed=9).schedule(topcuoglu_instance)
        validate(a, topcuoglu_instance)
        assert a.assignment() == b.assignment()

    def test_seeds_differ(self, topcuoglu_instance):
        a = RandomScheduler(seed=1).schedule(topcuoglu_instance)
        b = RandomScheduler(seed=2).schedule(topcuoglu_instance)
        assert a.assignment() != b.assignment()


class TestTDS:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_feasible_on_random(self, seed):
        dag = random_dag(40, seed=seed)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.5, seed=seed)
        s = TDS().schedule(inst)
        validate(s, inst)

    def test_duplicates_produced_on_trees(self):
        # An out-tree with expensive communication forces chain duplication.
        dag = out_tree_dag(2, 4, cost_scale=5.0, data_scale=50.0)
        inst = make_instance(dag, num_procs=4, heterogeneity=0.3, seed=1)
        s = TDS().schedule(inst)
        validate(s, inst)
        assert s.num_duplicates() > 0

    def test_chain_runs_on_one_processor(self):
        from repro.dag.graph import TaskDAG

        dag = TaskDAG.from_edges(
            [("a", "b", 100.0), ("b", "c", 100.0)],
            costs={"a": 1.0, "b": 1.0, "c": 1.0},
        )
        inst = homogeneous_instance(dag, num_procs=3, bandwidth=0.01)
        s = TDS().schedule(inst)
        validate(s, inst)
        # A pure chain has one cluster: all on a single processor, so the
        # enormous communication cost is never paid.
        procs = {s.proc_of(t) for t in ("a", "b", "c")}
        assert len(procs) == 1
        assert s.makespan == pytest.approx(3.0)

    def test_every_exit_covered(self, topcuoglu_instance):
        s = TDS().schedule(topcuoglu_instance)
        for t in topcuoglu_instance.dag.exit_tasks():
            assert t in s

    def test_feasible_more_clusters_than_procs(self):
        # 8 exits but only 2 processors: clusters must fold.
        dag = out_tree_dag(2, 3)
        inst = make_instance(dag, num_procs=2, seed=5)
        s = TDS().schedule(inst)
        validate(s, inst)

    def test_deterministic(self, topcuoglu_instance):
        a = TDS().schedule(topcuoglu_instance)
        b = TDS().schedule(topcuoglu_instance)
        assert a.makespan == b.makespan
