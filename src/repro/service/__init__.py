"""repro.service — scheduling as a service.

The serving side of the library: a long-lived asyncio daemon that
accepts "DAG + machine + ETC, schedule it with algorithm X" requests
over local TCP (or in-process), answers repeats from a
content-addressed cache keyed on
:meth:`repro.instance.Instance.fingerprint`, fans cold requests out to
a process pool, and exposes its own counters and latency percentiles.

Pieces
------
* :mod:`repro.service.engine` — batching/coalescing compute core
  (:class:`SchedulingEngine`, :class:`EngineConfig`)
* :mod:`repro.service.cache` — content-addressed LRU
  (:class:`ScheduleCache`, :func:`request_key`)
* :mod:`repro.service.metrics` — counters + p50/p95/p99
  (:class:`ServiceMetrics`, :class:`ServiceStats`)
* :mod:`repro.service.server` / :mod:`repro.service.client` — minimal
  HTTP endpoint and matching async client
* :mod:`repro.service.protocol` — request/response documents and the
  picklable cold-path compute function
* :mod:`repro.service.fleet` — horizontal scale-out: consistent-hash
  router + multi-daemon manager (:class:`FleetRouter`,
  :class:`FleetManager`, :class:`HashRing`)

Quickstart (in-process)::

    engine = SchedulingEngine(EngineConfig(workers=2))
    await engine.start()
    payload = await engine.submit(instance, "IMP")
    await engine.stop()

Quickstart (daemon)::

    $ repro-sched serve --port 8787 --workers 4 &
    $ repro-sched submit --dag graph.json --alg IMP --endpoint 127.0.0.1:8787
"""

from repro.service.cache import ScheduleCache, SegmentStore, request_key
from repro.service.client import ServiceClient, parse_endpoint
from repro.service.engine import EngineConfig, SchedulingEngine
from repro.service.errors import (
    RequestError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    StaleConnectionError,
    TransportError,
    WireFormatError,
    WireVersionError,
    WorkerError,
)
from repro.service.faults import FaultInjected, FaultPlan, FaultRule
from repro.service.fleet import (
    FleetManager,
    FleetRouter,
    FleetSpawnError,
    HashRing,
)
from repro.service.metrics import ServiceMetrics, ServiceStats
from repro.service.protocol import ScheduleResult, compute_schedule_payload
from repro.service.resilience import Deadline, RetryPolicy, RetryStats
from repro.service.server import ScheduleServer
from repro.service.wire import BINARY_CONTENT_TYPE, WIRE_VERSION

__all__ = [
    "BINARY_CONTENT_TYPE",
    "Deadline",
    "EngineConfig",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "FleetManager",
    "FleetRouter",
    "FleetSpawnError",
    "HashRing",
    "RequestError",
    "RetryPolicy",
    "RetryStats",
    "ScheduleCache",
    "ScheduleResult",
    "ScheduleServer",
    "SchedulingEngine",
    "SegmentStore",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceError",
    "ServiceMetrics",
    "ServiceOverloadedError",
    "ServiceStats",
    "ServiceTimeoutError",
    "StaleConnectionError",
    "TransportError",
    "WIRE_VERSION",
    "WireFormatError",
    "WireVersionError",
    "WorkerError",
    "compute_schedule_payload",
    "parse_endpoint",
    "request_key",
]
