"""Scheduling algorithms: classic baselines and shared machinery.

The paper's own contribution lives in :mod:`repro.core`; this package
holds everything it is compared against, all built on one shared
list-scheduling substrate (:mod:`repro.schedulers.base`).
"""

from repro.schedulers.base import ListScheduler, Scheduler, eft_placement, ready_time
from repro.schedulers.ranking import (
    alap_times,
    downward_ranks,
    machine_static_levels,
    upward_ranks,
)
from repro.schedulers.heft import HEFT
from repro.schedulers.cpop import CPOP
from repro.schedulers.hcpt import HCPT
from repro.schedulers.pets import PETS
from repro.schedulers.peft import PEFT
from repro.schedulers.dls import DLS
from repro.schedulers.etf import ETF
from repro.schedulers.mcp import MCP
from repro.schedulers.hlfet import HLFET
from repro.schedulers.lmt import LMT
from repro.schedulers.baselines import RandomScheduler, RoundRobinScheduler
from repro.schedulers.duplication_tds import TDS
from repro.schedulers.optimal import BranchAndBoundScheduler
from repro.schedulers.clustering import DSC, ClusteringScheduler, LinearClustering
from repro.schedulers.meta import GeneticScheduler, SimulatedAnnealingScheduler
from repro.schedulers.registry import all_scheduler_names, get_scheduler, register_scheduler

__all__ = [
    "Scheduler",
    "ListScheduler",
    "eft_placement",
    "ready_time",
    "upward_ranks",
    "downward_ranks",
    "machine_static_levels",
    "alap_times",
    "HEFT",
    "CPOP",
    "HCPT",
    "PETS",
    "PEFT",
    "DLS",
    "ETF",
    "MCP",
    "HLFET",
    "LMT",
    "RandomScheduler",
    "RoundRobinScheduler",
    "TDS",
    "BranchAndBoundScheduler",
    "ClusteringScheduler",
    "DSC",
    "LinearClustering",
    "SimulatedAnnealingScheduler",
    "GeneticScheduler",
    "get_scheduler",
    "all_scheduler_names",
    "register_scheduler",
]
