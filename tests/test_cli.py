"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.dag import io as dio
from repro.dag.generators import random_dag


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as e:
            build_parser().parse_args(["--version"])
        assert e.value.code == 0


class TestList:
    def test_lists_experiments_and_schedulers(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E15" in out
        assert "HEFT" in out and "IMP" in out


class TestSchedule:
    def test_schedule_json_dag(self, tmp_path, capsys):
        dag = random_dag(20, seed=1)
        path = tmp_path / "g.json"
        dio.save_json(dag, path)
        rc = main(["schedule", "--dag", str(path), "--alg", "HEFT", "--procs", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "SLR" in out

    def test_schedule_stg_dag(self, tmp_path, capsys):
        dag = random_dag(15, seed=2)
        path = tmp_path / "g.stg"
        dio.save_stg(dag, path)
        rc = main(["schedule", "--dag", str(path), "--alg", "IMP", "--gantt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "schedule" in out  # gantt header

    def test_unknown_algorithm_fails(self, tmp_path):
        dag = random_dag(10, seed=3)
        path = tmp_path / "g.json"
        dio.save_json(dag, path)
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["schedule", "--dag", str(path), "--alg", "NOPE"])


class TestSimulateRenderExplain:
    @pytest.fixture
    def dag_path(self, tmp_path):
        dag = random_dag(20, seed=9)
        path = tmp_path / "g.json"
        dio.save_json(dag, path)
        return str(path)

    def test_simulate_exact(self, dag_path, capsys):
        assert main(["simulate", "--dag", dag_path, "--alg", "HEFT"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out and "1.0000" in out

    def test_simulate_noise_and_contention(self, dag_path, capsys):
        rc = main(["simulate", "--dag", dag_path, "--alg", "HEFT",
                   "--noise", "0.3", "--contention"])
        assert rc == 0
        assert "simulated makespan" in capsys.readouterr().out

    def test_render(self, dag_path, tmp_path, capsys):
        out_path = tmp_path / "s.svg"
        assert main(["render", "--dag", dag_path, "--out", str(out_path)]) == 0
        assert out_path.read_text().startswith("<svg")

    def test_explain(self, dag_path, capsys):
        assert main(["explain", "--dag", dag_path, "--alg", "HEFT"]) == 0
        out = capsys.readouterr().out
        assert "dominant path" in out and "utilisation" in out

    def test_compare_unknown_suite(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["compare", "--suite", "nope"])

    def test_sensitivity(self, capsys):
        rc = main(["sensitivity", "--alg", "HEFT", "--tasks", "25",
                   "--procs", "3", "--reps", "1", "--step", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "elasticity" in out and "dominant parameter" in out

    def test_report_single(self, tmp_path, capsys):
        out_path = tmp_path / "r.md"
        assert main(["report", "--out", str(out_path), "--id", "E13"]) == 0
        assert "E13" in out_path.read_text()


class TestDemoAndExperiment:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "HEFT" in out and "IMP" in out

    def test_experiment_quick(self, capsys):
        assert main(["experiment", "E13"]) == 0
        out = capsys.readouterr().out
        assert "optimality gap" in out

    def test_unknown_experiment(self):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["experiment", "E99"])
