"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_basic_structure(self):
        out = format_table(["a", "bb"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_alignment(self):
        out = format_table(["col"], [[1], [100]])
        rows = out.splitlines()[1:]
        widths = {len(r) for r in rows}
        assert len(widths) == 1  # all lines equal width

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[1.23456789]])
        assert "1.235" in out

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatSeries:
    def test_structure(self):
        out = format_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]})
        lines = out.splitlines()
        assert "x" in lines[0] and "s1" in lines[0] and "s2" in lines[0]
        assert len(lines) == 4

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"s": [0.1]})

    def test_series_order_preserved(self):
        out = format_series("x", [1], {"zzz": [1.0], "aaa": [2.0]})
        header = out.splitlines()[0]
        assert header.index("zzz") < header.index("aaa")

    def test_title(self):
        out = format_series("x", [1], {"s": [1.0]}, title="Fig 3")
        assert out.startswith("Fig 3")
