"""Post-hoc schedule analysis: why is the makespan what it is?

Tools for dissecting a finished schedule:

* :func:`dominant_path` — the chain of placements (linked by precedence
  or processor-order) that determines the makespan; shortening anything
  off this path cannot help.
* :func:`task_slacks` — how much each task could slip without moving
  the makespan (0 on the dominant path).
* :func:`utilisation` — per-processor busy fraction over the makespan.
* :func:`communication_volume` — data actually transferred per directed
  processor pair (duplication-aware: a child charges its cheapest
  supplying copy).
* :func:`explain` — a one-screen text report combining all of the above.
"""

from __future__ import annotations

from repro.instance import Instance
from repro.schedule.schedule import Schedule, ScheduledTask
from repro.types import ProcId, TaskId

_EPS = 1e-9


def _supplier(
    schedule: Schedule, instance: Instance, parent: TaskId, child_copy: ScheduledTask
) -> tuple[ScheduledTask, float]:
    """The parent copy that delivers data to ``child_copy`` earliest."""
    best = None
    best_arrival = float("inf")
    for copy in schedule.copies(parent):
        arrival = copy.end + instance.comm_time(
            parent, child_copy.task, copy.proc, child_copy.proc
        )
        if arrival < best_arrival - _EPS:
            best_arrival = arrival
            best = copy
    assert best is not None
    return best, best_arrival


def dominant_path(schedule: Schedule, instance: Instance) -> list[ScheduledTask]:
    """The placement chain pinning the makespan, latest-finishing first
    reversed to execution order.

    Walk backwards from the latest-finishing copy: at each step the
    blocker is either the preceding task on the same processor (if it
    ends exactly at this copy's start) or the parent whose data arrival
    equals the start.  Entry tasks starting at 0 end the walk.
    """
    placements = schedule.all_placements()
    if not placements:
        return []
    current = max(placements, key=lambda p: (p.end, str(p.task)))
    path = [current]
    while current.start > _EPS:
        blocker: ScheduledTask | None = None
        # Same-processor predecessor ending at our start?
        for other in schedule.proc_entries(current.proc):
            if abs(other.end - current.start) <= _EPS and other is not current:
                blocker = other
                break
        if blocker is None:
            # Parent whose arrival equals our start.
            for parent in instance.dag.predecessors(current.task):
                copy, arrival = _supplier(schedule, instance, parent, current)
                if abs(arrival - current.start) <= _EPS * max(1.0, arrival):
                    blocker = copy
                    break
        if blocker is None:
            break  # start determined by the ready time of an entry, or slack
        path.append(blocker)
        current = blocker
    path.reverse()
    return path


def task_slacks(schedule: Schedule, instance: Instance) -> dict[TaskId, float]:
    """Latest-permissible-finish minus actual finish per task (primary
    copies).  A task's slack is how far it could slip, all else fixed,
    without growing the makespan or starving a consumer."""
    span = schedule.makespan
    dag = instance.dag
    slack: dict[TaskId, float] = {}
    for task in dag.tasks():
        placed = schedule.entry(task)
        latest = span
        # Consumers bound the finish: data must still arrive on time.
        for child in dag.successors(task):
            for child_copy in schedule.copies(child):
                comm = instance.comm_time(task, child, placed.proc, child_copy.proc)
                latest = min(latest, child_copy.start - comm)
        # The next task on the same processor bounds it too.
        entries = schedule.proc_entries(placed.proc)
        for i, entry in enumerate(entries):
            if entry.start == placed.start and entry.task == task and i + 1 < len(entries):
                latest = min(latest, entries[i + 1].start)
                break
        slack[task] = max(0.0, latest - placed.end)
    return slack


def utilisation(schedule: Schedule) -> dict[ProcId, float]:
    """Busy fraction of each processor over the makespan (0 when the
    schedule is empty)."""
    span = schedule.makespan
    out: dict[ProcId, float] = {}
    for proc in schedule.machine.proc_ids():
        busy = schedule.timeline(proc).busy_time()
        out[proc] = busy / span if span > 0 else 0.0
    return out


def communication_volume(
    schedule: Schedule, instance: Instance
) -> dict[tuple[ProcId, ProcId], float]:
    """Data volume actually shipped per directed processor pair.

    Each (parent, child-copy) edge charges the parent copy that supplies
    it (the earliest-arrival copy); local supplies charge nothing.
    """
    volume: dict[tuple[ProcId, ProcId], float] = {}
    dag = instance.dag
    for child in dag.tasks():
        for child_copy in schedule.copies(child):
            for parent in dag.predecessors(child):
                supplier, _ = _supplier(schedule, instance, parent, child_copy)
                if supplier.proc == child_copy.proc:
                    continue
                key = (supplier.proc, child_copy.proc)
                volume[key] = volume.get(key, 0.0) + dag.data(parent, child)
    return volume


def explain(schedule: Schedule, instance: Instance, top: int = 8) -> str:
    """A one-screen text report of the schedule's structure."""
    lines = [f"schedule {schedule.name!r}: makespan {schedule.makespan:g}"]
    path = dominant_path(schedule, instance)
    lines.append(f"dominant path ({len(path)} placements):")
    for placed in path[:top]:
        kind = "dup" if placed.duplicate else "run"
        lines.append(
            f"  {kind} {placed.task!r} on P{placed.proc} "
            f"[{placed.start:g}, {placed.end:g})"
        )
    if len(path) > top:
        lines.append(f"  ... and {len(path) - top} more")
    util = utilisation(schedule)
    mean_util = sum(util.values()) / len(util) if util else 0.0
    lines.append(
        "utilisation: "
        + ", ".join(f"P{p}={u:.0%}" for p, u in util.items())
        + f" (mean {mean_util:.0%})"
    )
    volume = communication_volume(schedule, instance)
    total = sum(volume.values())
    lines.append(f"cross-processor data shipped: {total:g} units over {len(volume)} links")
    slack = task_slacks(schedule, instance)
    tight = sum(1 for s in slack.values() if s <= _EPS)
    lines.append(f"zero-slack tasks: {tight}/{len(slack)}")
    return "\n".join(lines)
