"""Feasibility validation of schedules against an instance.

A schedule is *feasible* when:

1. every task of the DAG has a primary placement,
2. every placement's duration equals the ETC entry of its (task, proc),
3. placements on one processor never overlap (guaranteed by the
   :class:`~repro.schedule.timeline.Timeline` but re-checked here so
   deserialised or hand-built schedules are covered too),
4. every copy of a child starts no earlier than, for **each** parent,
   the earliest time that parent's data can arrive — i.e. the minimum
   over the parent's copies of ``copy.end + comm(copy.proc -> child.proc)``.

Duplication semantics: a duplicate copy of a parent is a full re-execution,
so it must itself satisfy rule 4 with respect to *its* parents.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.instance import Instance
from repro.schedule.schedule import Schedule, ScheduledTask

#: Relative tolerance for floating-point comparisons in validation.
_RTOL = 1e-6
_ATOL = 1e-6


def _close_geq(a: float, b: float) -> bool:
    """a >= b within tolerance."""
    return a >= b - (_ATOL + _RTOL * max(abs(a), abs(b)))


def violations(schedule: Schedule, instance: Instance) -> list[str]:
    """Collect every feasibility violation (empty list == feasible)."""
    out: list[str] = []
    dag = instance.dag

    # Rule 1: coverage.
    for t in dag.tasks():
        if t not in schedule:
            out.append(f"task {t!r} is not scheduled")
    if out:
        return out  # precedence checks below assume coverage

    # Rules 2 and 3: durations and per-processor exclusivity.
    for proc in schedule.machine.proc_ids():
        entries = schedule.proc_entries(proc)
        prev: ScheduledTask | None = None
        for placed in entries:
            expected = instance.exec_time(placed.task, proc)
            if abs(placed.duration - expected) > _ATOL + _RTOL * max(expected, 1.0):
                out.append(
                    f"copy of {placed.task!r} on {proc!r} runs {placed.duration:g}, "
                    f"ETC says {expected:g}"
                )
            if prev is not None and placed.start < prev.end - _ATOL:
                out.append(
                    f"overlap on {proc!r}: {prev.task!r} [{prev.start:g},{prev.end:g}) vs "
                    f"{placed.task!r} [{placed.start:g},{placed.end:g})"
                )
            prev = placed

    # Rule 4: precedence with communication, duplication-aware.
    for child in dag.tasks():
        parents = dag.predecessors(child)
        if not parents:
            continue
        for child_copy in schedule.copies(child):
            for parent in parents:
                arrival = min(
                    pc.end
                    + instance.comm_time(parent, child, pc.proc, child_copy.proc)
                    for pc in schedule.copies(parent)
                )
                if not _close_geq(child_copy.start, arrival):
                    out.append(
                        f"{child!r} on {child_copy.proc!r} starts at {child_copy.start:g} "
                        f"before data from {parent!r} arrives at {arrival:g}"
                    )
    return out


def validate(schedule: Schedule, instance: Instance) -> None:
    """Raise :class:`~repro.exceptions.ValidationError` if infeasible."""
    found = violations(schedule, instance)
    if found:
        raise ValidationError(found)
