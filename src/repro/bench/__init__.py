"""Experiment harness: workload suites, sweep runner, report formatting
and the per-figure/table experiment registry (E1..E18)."""

from repro.bench.runner import SweepResult, run_instances, run_sweep
from repro.bench.compare import ComparisonResult, compare_schedulers
from repro.bench.crossover import Crossover, find_crossover
from repro.bench.sensitivity import OperatingPoint, SensitivityResult, analyze_sensitivity
from repro.bench.report import generate_report, write_report
from repro.bench.registry import (
    Experiment,
    all_experiment_ids,
    get_experiment,
    run_experiment,
)

__all__ = [
    "SweepResult",
    "run_instances",
    "run_sweep",
    "ComparisonResult",
    "compare_schedulers",
    "Crossover",
    "find_crossover",
    "OperatingPoint",
    "SensitivityResult",
    "analyze_sensitivity",
    "generate_report",
    "write_report",
    "Experiment",
    "all_experiment_ids",
    "get_experiment",
    "run_experiment",
]
