"""Golden makespans: every registered scheduler, three fixed instances.

The expected values live in ``golden_makespans.json`` next to this file
and are compared with *exact* float equality — any behavior change in a
scheduler, the placement kernels, or the instance generators shows up as
a failure here with the precise scheduler/instance that moved.

Regenerate (after an intentional change) with:

    PYTHONPATH=src python tests/schedulers/test_golden_makespans.py
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench import workloads as W
from repro.schedulers.registry import all_scheduler_names, get_scheduler

FIXTURE = Path(__file__).with_name("golden_makespans.json")


def _instances():
    """Three tiny fixed instances (small enough for the B&B oracle)."""
    return {
        "het-small": W.random_instance(
            np.random.default_rng(11), num_tasks=9, num_procs=3
        ),
        "het-comm-heavy": W.random_instance(
            np.random.default_rng(23), num_tasks=8, num_procs=2, ccr=5.0, heterogeneity=1.0
        ),
        "homog-small": W.homogeneous_random_instance(
            np.random.default_rng(37), num_tasks=10, num_procs=3
        ),
    }


def _compute_all() -> dict[str, dict[str, float]]:
    out: dict[str, dict[str, float]] = {}
    for inst_name, inst in _instances().items():
        out[inst_name] = {
            sched: get_scheduler(sched).schedule(inst).makespan
            for sched in all_scheduler_names()
        }
    return out


@pytest.fixture(scope="module")
def golden() -> dict[str, dict[str, float]]:
    with FIXTURE.open() as fh:
        return json.load(fh)


def test_fixture_covers_every_scheduler(golden):
    names = set(all_scheduler_names())
    for inst_name, row in golden.items():
        assert set(row) == names, f"fixture stale for {inst_name}"


@pytest.mark.parametrize("inst_name", ["het-small", "het-comm-heavy", "homog-small"])
def test_makespans_match_golden(golden, inst_name):
    inst = _instances()[inst_name]
    for sched, expected in golden[inst_name].items():
        got = get_scheduler(sched).schedule(inst).makespan
        assert got == expected, (
            f"{sched} on {inst_name}: makespan {got!r} != golden {expected!r}"
        )


def test_optimal_is_lower_bound(golden):
    for inst_name, row in golden.items():
        opt = row["OPT-BB"]
        for sched, span in row.items():
            assert span >= opt - 1e-9, (inst_name, sched)


if __name__ == "__main__":
    FIXTURE.write_text(json.dumps(_compute_all(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")
