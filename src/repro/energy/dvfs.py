"""DVFS slack reclamation: stretch slack-owning tasks at lower frequency.

The post-pass keeps every *start time* of the schedule fixed and only
stretches task executions into their own slack windows (as computed by
:func:`repro.schedule.analysis.task_slacks` — which accounts for both
consumer data deadlines and the next task on the same processor).
Because no start moves, each task's stretch is independent of every
other's and the makespan is provably unchanged.

Tasks owning duplicates are left at nominal frequency (their copies
exist to deliver data early; slowing them defeats the purpose), as are
duplicates themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.energy.power import PowerModel, schedule_energy
from repro.exceptions import ConfigurationError
from repro.instance import Instance
from repro.schedule.analysis import task_slacks
from repro.schedule.schedule import Schedule
from repro.types import TaskId

#: Safety margin: only consume this fraction of a task's slack, so that
#: floating-point drift can never turn a zero-slack consumer infeasible.
_SLACK_USE = 1.0 - 1e-9


@dataclass(frozen=True)
class DvfsResult:
    """Outcome of one slack-reclamation pass."""

    frequencies: dict[TaskId, float]
    energy_nominal: float
    energy_scaled: float
    slowed_tasks: int

    @property
    def savings_fraction(self) -> float:
        """Relative energy saved (0 when nothing could be slowed)."""
        if self.energy_nominal <= 0:
            return 0.0
        return 1.0 - self.energy_scaled / self.energy_nominal


def reclaim_slack(
    schedule: Schedule,
    instance: Instance,
    model: PowerModel,
    levels: Sequence[float] = (0.6, 0.7, 0.8, 0.9, 1.0),
) -> DvfsResult:
    """Assign each primary task the lowest legal frequency level.

    A level ``f`` is legal for a task of nominal duration ``d`` when the
    execution stretch ``d/f - d`` fits inside the task's slack.  Returns
    the frequency map plus before/after energy under ``model``.
    """
    levels = sorted(set(float(f) for f in levels))
    if not levels or levels[0] <= 0 or levels[-1] > 1.0:
        raise ConfigurationError("levels must be within (0, 1]")
    if levels[-1] != 1.0:
        raise ConfigurationError("levels must include the nominal frequency 1.0")

    slack = task_slacks(schedule, instance)
    frequencies: dict[TaskId, float] = {}
    slowed = 0
    for task in instance.dag.tasks():
        placed = schedule.entry(task)
        copies = schedule.copies(task)
        if any(c.duplicate for c in copies):
            frequencies[task] = 1.0
            continue
        budget = slack[task] * _SLACK_USE
        chosen = 1.0
        for f in levels:
            stretch = placed.duration / f - placed.duration
            if stretch <= budget:
                chosen = f
                break
        frequencies[task] = chosen
        if chosen < 1.0:
            slowed += 1

    nominal = schedule_energy(schedule, model)
    scaled = schedule_energy(schedule, model, frequencies)
    return DvfsResult(
        frequencies=frequencies,
        energy_nominal=nominal,
        energy_scaled=scaled,
        slowed_tasks=slowed,
    )
