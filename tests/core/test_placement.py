"""Tests for the lookahead/duplication placement engine."""

import pytest

from repro.core.placement import PlacementEngine
from repro.dag.graph import TaskDAG
from repro.instance import homogeneous_instance, make_instance
from repro.dag.generators import random_dag
from repro.schedule.schedule import Schedule
from repro.schedule.validation import validate
from repro.schedulers.base import eft_placement
from repro.schedulers.ranking import upward_ranks


@pytest.fixture
def fork_instance():
    """a broadcasts expensive data to both children: the second child
    must either wait 50 time units, queue behind its sibling, or re-run
    a locally — duplication pays."""
    dag = TaskDAG.from_edges(
        [("a", "b", 50.0), ("a", "c", 50.0)],
        costs={"a": 2.0, "b": 5.0, "c": 5.0},
    )
    return homogeneous_instance(dag, num_procs=2, bandwidth=1.0)


class TestPlainEngineMatchesEft:
    def test_equivalent_to_eft(self, topcuoglu_instance):
        engine = PlacementEngine(lookahead=False, duplication=False)
        ranks = upward_ranks(topcuoglu_instance)
        from repro.schedulers.heft import HEFT

        order = HEFT().priority_order(topcuoglu_instance)
        s_engine = Schedule(topcuoglu_instance.machine)
        s_ref = Schedule(topcuoglu_instance.machine)
        for t in order:
            engine.place(s_engine, topcuoglu_instance, t, ranks)
            p = eft_placement(s_ref, topcuoglu_instance, t)
            s_ref.add(t, p.proc, p.start, p.end - p.start)
        assert s_engine.makespan == pytest.approx(80.0)
        assert s_engine.assignment() == s_ref.assignment()


class TestDuplication:
    def test_duplicates_constraining_parent(self, fork_instance):
        engine = PlacementEngine(lookahead=False, duplication=True)
        s = Schedule(fork_instance.machine)
        engine.place(s, fork_instance, "a")
        engine.place(s, fork_instance, "b")
        engine.place(s, fork_instance, "c")
        validate(s, fork_instance)
        # With a duplicate of a on the second processor both children
        # finish by t=7; without one the best alternative is 12 (queue
        # both children on a's processor).
        assert s.makespan <= 7.0 + 1e-9
        assert s.num_duplicates() == 1

    def test_duplicate_never_increases_eft(self, fork_instance):
        plain = PlacementEngine(lookahead=False, duplication=False)
        dup = PlacementEngine(lookahead=False, duplication=True)
        for engine_pair in [(plain, dup)]:
            spans = []
            for engine in engine_pair:
                s = Schedule(fork_instance.machine)
                for t in ("a", "b", "c"):
                    engine.place(s, fork_instance, t)
                spans.append(s.makespan)
            assert spans[1] <= spans[0] + 1e-9

    def test_no_duplication_when_useless(self, fork_instance):
        # Zero communication: duplicating can never help.
        dag = TaskDAG.from_edges([("a", "b", 0.0)], costs={"a": 2.0, "b": 3.0})
        inst = homogeneous_instance(dag, num_procs=2)
        engine = PlacementEngine(lookahead=False, duplication=True)
        s = Schedule(inst.machine)
        engine.place(s, inst, "a")
        engine.place(s, inst, "b")
        assert s.num_duplicates() == 0

    def test_max_duplications_respected(self):
        # A join of many expensive remote parents: the engine may only
        # duplicate up to the configured bound per placement.
        edges = [((f"p{i}"), "join", 40.0) for i in range(6)]
        costs = {f"p{i}": 1.0 for i in range(6)}
        costs["join"] = 2.0
        dag = TaskDAG.from_edges(edges, costs=costs)
        inst = homogeneous_instance(dag, num_procs=3, bandwidth=1.0)
        engine = PlacementEngine(lookahead=False, duplication=True,
                                 max_duplications_per_task=2)
        s = Schedule(inst.machine)
        for t in dag.topological_order():
            engine.place(s, inst, t)
        validate(s, inst)
        assert s.num_duplicates() <= 2 * dag.num_tasks

    def test_rollback_leaves_no_garbage(self, topcuoglu_instance):
        # After a full run the number of placements equals tasks plus
        # committed duplicates; no tentative copies leak.
        engine = PlacementEngine(lookahead=True, duplication=True)
        ranks = upward_ranks(topcuoglu_instance)
        from repro.schedulers.heft import HEFT

        s = Schedule(topcuoglu_instance.machine)
        for t in HEFT().priority_order(topcuoglu_instance):
            engine.place(s, topcuoglu_instance, t, ranks)
        assert len(s.all_placements()) == len(s) + s.num_duplicates()
        validate(s, topcuoglu_instance)


class TestLookaheadTrap:
    """A deterministic instance where greedy EFT provably loses.

    Task t runs slightly faster on P1, but its only child c is cheap on
    P0 and t->c carries heavy data: picking P1 for t (greedy) forces c
    into either an expensive run (P1) or an expensive transfer (P0).
    """

    @pytest.fixture
    def trap(self):
        import numpy as np

        from repro.instance import Instance
        from repro.machine.cluster import Machine
        from repro.machine.etc import ETCMatrix

        dag = TaskDAG.from_edges([("t", "c", 20.0)], costs={"t": 1.0, "c": 1.0})
        machine = Machine.homogeneous(2, bandwidth=1.0)
        etc = ETCMatrix(
            ["t", "c"], [0, 1], np.array([[10.0, 9.0], [5.0, 50.0]])
        )
        return Instance(dag=dag, machine=machine, etc=etc)

    def test_greedy_falls_in(self, trap):
        from repro.schedulers.heft import HEFT

        greedy = HEFT().schedule(trap)
        assert greedy.proc_of("t") == 1  # EFT picks the 9 over the 10
        assert greedy.makespan == pytest.approx(34.0)

    def test_lookahead_avoids(self, trap):
        from repro.core.lookahead import LookaheadScheduler

        smart = LookaheadScheduler().schedule(trap)
        validate(smart, trap)
        assert smart.proc_of("t") == 0
        assert smart.makespan == pytest.approx(15.0)

    def test_improved_inherits_escape(self, trap):
        from repro.core import ImprovedScheduler

        assert ImprovedScheduler().schedule(trap).makespan == pytest.approx(15.0)


class TestLookahead:
    def test_lookahead_chain_avoids_greedy_trap(self):
        # Classic trap: the greedy EFT puts t on a fast-but-remote
        # processor, hurting its only (critical) child.  One-level
        # lookahead must see through it at least as well as EFT overall.
        dag = random_dag(40, seed=3)
        inst = make_instance(dag, num_procs=4, heterogeneity=1.0, seed=3)
        ranks = upward_ranks(inst)
        from repro.schedulers.heft import HEFT

        order = HEFT().priority_order(inst)
        for flag in (False, True):
            engine = PlacementEngine(lookahead=flag, duplication=False)
            s = Schedule(inst.machine)
            for t in order:
                engine.place(s, inst, t, ranks)
            validate(s, inst)

    def test_lookahead_without_ranks_defaults(self, topcuoglu_instance):
        engine = PlacementEngine(lookahead=True, duplication=False)
        s = Schedule(topcuoglu_instance.machine)
        from repro.schedulers.heft import HEFT

        for t in HEFT().priority_order(topcuoglu_instance):
            engine.place(s, topcuoglu_instance, t)  # ranks omitted
        validate(s, topcuoglu_instance)
