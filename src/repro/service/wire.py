"""Length-prefixed binary wire format for instances and schedules.

The JSON documents of :mod:`repro.service.protocol` are self-describing
but expensive: the warm path of the service spends more time in
``json.dumps``/``json.loads`` than in scheduling (BENCH_service.json).
This module defines the binary alternative the server and client
negotiate via ``Content-Type``/``Accept`` (see
:data:`BINARY_CONTENT_TYPE`): the same information, serialised as
length-prefixed sections of packed little-endian scalars and flat
``float64``/``uint32`` arrays — the form the compiled core
(:mod:`repro.compiled`) already keeps instances in.

Deliberately stdlib-only (``struct``/``array``/``memoryview``): the
encoder packs straight out of the kernel's flat arrays (topo-ordered
task table, edge arrays, the dense ETC matrix) and the decoder reads
``memoryview`` slices in place — no intermediate dict tree is ever
materialised on either side.

Message layout (all integers little-endian)::

    header   magic b"RPWF" | version u8 | kind u8
    kinds    1 = instance    (a full problem instance)
             2 = request     (alg + options + nested instance blob)
             3 = payload     (a computed schedule, cache-value form)
             4 = response    (envelope + nested payload blob)

Primitives::

    str      u32 byte-length + UTF-8 bytes
    blob     u32 byte-length + raw bytes (a nested message)
    f64[n]   u32 count + n * 8 bytes packed float64
    u32[n]   u32 count + n * 4 bytes packed uint32
    id       tag u8 + body — 0 none, 1 false, 2 true, 3 i64,
             4 big-int (decimal string), 5 f64, 6 str,
             7 tuple (u32 count + ids)

Every decode checks the magic, then the version byte, then the kind:
a blob from a different format version raises
:class:`~repro.service.errors.WireVersionError` before any section is
touched, never a garbage decode.  The exact byte layout is pinned by
golden fixtures under ``tests/service/golden/`` and specified in
``docs/file-formats.md`` — change it only with a version bump.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from typing import TYPE_CHECKING, Sequence

from repro.service.errors import WireFormatError, WireVersionError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.instance import Instance

__all__ = [
    "BINARY_CONTENT_TYPE",
    "MAGIC",
    "WIRE_VERSION",
    "KIND_INSTANCE",
    "KIND_REQUEST",
    "KIND_PAYLOAD",
    "KIND_RESPONSE",
    "decode_instance",
    "decode_payload",
    "decode_request",
    "decode_response",
    "encode_instance",
    "encode_payload",
    "encode_request",
    "encode_response",
    "is_wire",
]

#: HTTP content type that selects this format (request bodies via
#: ``Content-Type``, response bodies via ``Accept``).
BINARY_CONTENT_TYPE = "application/x-repro-bin"

MAGIC = b"RPWF"
WIRE_VERSION = 1

KIND_INSTANCE = 1
KIND_REQUEST = 2
KIND_PAYLOAD = 3
KIND_RESPONSE = 4

_KIND_NAMES = {
    KIND_INSTANCE: "instance",
    KIND_REQUEST: "request",
    KIND_PAYLOAD: "payload",
    KIND_RESPONSE: "response",
}

_HEADER = struct.Struct("<4sBB")
_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

#: Communication-model tags (section ``comm`` of an instance message).
_COMM_ZERO, _COMM_UNIFORM, _COMM_LINKS = 0, 1, 2

#: Optional trailing-section tags.  Trailers ride after the last
#: mandatory section of a message; a message without them is
#: byte-identical to the pre-trailer encoding, which keeps the golden
#: hex fixtures (and every cached blob) valid without a version bump.
_TRAILER_DEADLINE = 1       # instance: f64 end-to-end deadline
_TRAILER_SCHEDULABILITY = 1  # payload: canonical-JSON schedulability doc

#: Id tags.
_ID_NONE, _ID_FALSE, _ID_TRUE, _ID_I64, _ID_BIG, _ID_F64, _ID_STR, _ID_TUPLE = range(8)

_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1

#: Fixed-width scalar prefix of a payload message (directly after the
#: 6-byte header): num_tasks, num_procs, num_duplicates, placement
#: count, makespan.  One struct so lazy readers grab it in one call.
_PAYLOAD_PREFIX = struct.Struct("<IIIId")

_BIG_ENDIAN = sys.byteorder == "big"


# ----------------------------------------------------------------------
# low-level writer / reader
# ----------------------------------------------------------------------
class _Writer:
    """Accumulates packed sections; one ``b"".join`` at the end."""

    __slots__ = ("parts",)

    def __init__(self, kind: int) -> None:
        self.parts: list[bytes] = [_HEADER.pack(MAGIC, WIRE_VERSION, kind)]

    def u8(self, value: int) -> None:
        self.parts.append(_U8.pack(value))

    def u32(self, value: int) -> None:
        self.parts.append(_U32.pack(value))

    def f64(self, value: float) -> None:
        self.parts.append(_F64.pack(value))

    def str(self, text: str) -> None:
        raw = text.encode("utf-8")
        self.parts.append(_U32.pack(len(raw)))
        self.parts.append(raw)

    def blob(self, raw: bytes) -> None:
        self.parts.append(_U32.pack(len(raw)))
        self.parts.append(raw)

    def f64s(self, values) -> None:
        """A float64 array section from any iterable of floats.

        ``numpy`` arrays take the fast path — their buffer is already
        packed IEEE-754 doubles, so the bytes are copied verbatim.
        """
        tobytes = getattr(values, "tobytes", None)
        if tobytes is not None and getattr(values, "dtype", None) is not None:
            if str(values.dtype) != "float64":  # pragma: no cover - defensive
                values = values.astype("float64")
            raw = values.tobytes()
            count = values.size
        else:
            arr = array("d", values)
            if _BIG_ENDIAN:  # pragma: no cover - little-endian on the wire
                arr.byteswap()
            raw = arr.tobytes()
            count = len(arr)
        if _BIG_ENDIAN and tobytes is not None:  # pragma: no cover
            raw = values.astype("<f8").tobytes()
        self.parts.append(_U32.pack(count))
        self.parts.append(raw)

    def u32s(self, values: Sequence[int]) -> None:
        arr = array("I", values)
        if arr.itemsize != 4:  # pragma: no cover - 'I' is 4 bytes on all majors
            raise WireFormatError("platform lacks a 4-byte unsigned array type")
        if _BIG_ENDIAN:  # pragma: no cover
            arr.byteswap()
        self.parts.append(_U32.pack(len(arr)))
        self.parts.append(arr.tobytes())

    def id(self, value) -> None:
        if value is None:
            self.u8(_ID_NONE)
        elif value is False:
            self.u8(_ID_FALSE)
        elif value is True:
            self.u8(_ID_TRUE)
        elif isinstance(value, int):
            if _I64_MIN <= value <= _I64_MAX:
                self.u8(_ID_I64)
                self.parts.append(_I64.pack(value))
            else:
                self.u8(_ID_BIG)
                self.str(str(value))
        elif isinstance(value, float):
            self.u8(_ID_F64)
            self.f64(value)
        elif isinstance(value, str):
            self.u8(_ID_STR)
            self.str(value)
        elif isinstance(value, tuple):
            self.u8(_ID_TUPLE)
            self.u32(len(value))
            for item in value:
                self.id(item)
        else:
            raise WireFormatError(
                f"cannot encode id of type {type(value).__name__}: {value!r}"
            )

    def ids(self, values) -> None:
        """An id table: count, mode byte, then the ids.

        Mode 1 is the packed fast path — every id is a plain ``int`` in
        i64 range (the overwhelmingly common case for task/processor
        ids), stored as one contiguous i64 block the decoder can unpack
        in a single call.  Mode 0 falls back to per-id tags.
        """
        values = list(values)
        self.u32(len(values))
        if values and all(
            type(v) is int and _I64_MIN <= v <= _I64_MAX for v in values
        ):
            self.u8(1)
            self.parts.append(struct.pack(f"<{len(values)}q", *values))
        else:
            self.u8(0)
            for value in values:
                self.id(value)

    def bytes(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    """Sequential reader over one message; slices are ``memoryview``\\ s."""

    __slots__ = ("view", "off")

    def __init__(self, buf) -> None:
        self.view = memoryview(buf)
        self.off = 0

    def _take(self, n: int) -> memoryview:
        end = self.off + n
        if end > len(self.view):
            raise WireFormatError(
                f"truncated wire blob: wanted {n} bytes at offset {self.off}, "
                f"have {len(self.view) - self.off}"
            )
        out = self.view[self.off:end]
        self.off = end
        return out

    def u8(self) -> int:
        return _U8.unpack_from(self._take(1))[0]

    def u32(self) -> int:
        return _U32.unpack_from(self._take(4))[0]

    def f64(self) -> float:
        return _F64.unpack_from(self._take(8))[0]

    def str(self) -> str:
        n = self.u32()
        try:
            return bytes(self._take(n)).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"invalid UTF-8 in wire string: {exc}") from None

    def blob(self) -> memoryview:
        return self._take(self.u32())

    def f64s(self) -> array:
        n = self.u32()
        arr = array("d")
        arr.frombytes(self._take(8 * n))
        if _BIG_ENDIAN:  # pragma: no cover
            arr.byteswap()
        return arr

    def u32s(self) -> array:
        n = self.u32()
        arr = array("I")
        arr.frombytes(self._take(4 * n))
        if _BIG_ENDIAN:  # pragma: no cover
            arr.byteswap()
        return arr

    def id(self):
        tag = self.u8()
        if tag == _ID_NONE:
            return None
        if tag == _ID_FALSE:
            return False
        if tag == _ID_TRUE:
            return True
        if tag == _ID_I64:
            return _I64.unpack_from(self._take(8))[0]
        if tag == _ID_BIG:
            return int(self.str())
        if tag == _ID_F64:
            return self.f64()
        if tag == _ID_STR:
            return self.str()
        if tag == _ID_TUPLE:
            return tuple(self.id() for _ in range(self.u32()))
        raise WireFormatError(f"unknown id tag {tag}")

    def ids(self) -> list:
        n = self.u32()
        mode = self.u8()
        if mode == 1:
            return list(struct.unpack(f"<{n}q", self._take(8 * n)))
        if mode != 0:
            raise WireFormatError(f"unknown id-table mode {mode}")
        return [self.id() for _ in range(n)]

    def done(self) -> bool:
        return self.off == len(self.view)


def is_wire(buf: bytes | memoryview) -> bool:
    """Cheap sniff: does ``buf`` start with this format's magic?"""
    return len(buf) >= 4 and bytes(buf[:4]) == MAGIC


def _open(buf, kind: int) -> _Reader:
    """Validate the header of one message and position a reader after it."""
    reader = _Reader(buf)
    head = bytes(reader._take(_HEADER.size)) if len(reader.view) >= _HEADER.size else None
    if head is None:
        raise WireFormatError(
            f"wire blob too short for a header ({len(reader.view)} bytes)"
        )
    magic, version, got_kind = _HEADER.unpack(head)
    if magic != MAGIC:
        raise WireFormatError(f"bad wire magic {magic!r} (expected {MAGIC!r})")
    if version != WIRE_VERSION:
        raise WireVersionError(
            f"unsupported wire version {version} (this build speaks {WIRE_VERSION})"
        )
    if got_kind != kind:
        raise WireFormatError(
            f"wrong wire kind {_KIND_NAMES.get(got_kind, got_kind)!r} "
            f"(expected {_KIND_NAMES[kind]!r})"
        )
    return reader


# ----------------------------------------------------------------------
# instance
# ----------------------------------------------------------------------
def encode_instance(instance: "Instance") -> bytes:
    """Serialise a full instance to its binary wire form.

    Sources the hot sections from the instance's kernel lowering — the
    canonical task table, flat edge arrays and the dense ETC matrix —
    so encoding is array packing, not document building.  Lossless:
    names, task attrs, ETC row/column order and the communication model
    all round-trip exactly (``decode_instance(encode_instance(x))``
    re-serialises byte-identically to ``x``).
    """
    from repro.machine.comm import (
        LinkCommunication,
        UniformCommunication,
        ZeroCommunication,
    )

    dag = instance.dag
    machine = instance.machine
    etc = instance.etc
    kernel = instance.kernel
    tasks = kernel.tasks
    procs = kernel.procs
    ti = kernel.ti
    pi = kernel.pi

    w = _Writer(KIND_INSTANCE)
    w.str(instance.name)
    w.str(dag.name)
    w.str(machine.name)

    edges = list(dag.edges())
    w.u32(len(tasks))
    w.u32(len(procs))
    w.u32(len(edges))

    w.ids(tasks)
    w.f64s(dag.cost(t) for t in tasks)
    for t in tasks:
        task = dag.task(t)
        w.str("" if task.name == str(t) else task.name)
    attrs = [(i, dag.task(t).attrs) for i, t in enumerate(tasks) if dag.task(t).attrs]
    w.u32(len(attrs))
    for i, mapping in attrs:
        w.u32(i)
        w.str(json.dumps(dict(mapping), sort_keys=True, default=str))

    # Flat edge arrays in the DAG's own iteration order, so the decoded
    # graph replays the exact construction sequence (iteration order is
    # part of the library's determinism contract).
    w.u32s([ti[u] for u, _ in edges])
    w.u32s([ti[v] for _, v in edges])
    w.f64s(dag.data(u, v) for u, v in edges)

    w.ids(procs)
    w.f64s(machine.speed(p) for p in procs)
    for p in procs:
        w.str(machine.processor(p).name)

    comm = machine.comm
    if isinstance(comm, ZeroCommunication):
        w.u8(_COMM_ZERO)
    elif isinstance(comm, UniformCommunication):
        w.u8(_COMM_UNIFORM)
        w.f64(comm.latency)
        w.f64(comm.bandwidth)
    elif isinstance(comm, LinkCommunication):
        w.u8(_COMM_LINKS)
        pairs = [(src, dst) for src in procs for dst in procs if src != dst]
        w.u32(len(pairs))
        for src, dst in pairs:
            latency = comm.time(0.0, src, dst)
            unit = comm.time(1.0, src, dst) - latency
            w.u32(pi[src])
            w.u32(pi[dst])
            w.f64(latency)
            w.f64(1.0 / unit if unit > 0 else 1e30)
    else:
        raise WireFormatError(
            f"cannot encode communication model {type(comm).__name__}"
        )

    # The ETC matrix in *its own* row/column order (which may differ
    # from the canonical kernel order): permutation indices into the id
    # tables, then the dense float block verbatim.
    w.u32s([ti[t] for t in etc.task_ids])
    w.u32s([pi[p] for p in etc.proc_ids])
    w.f64s(etc.as_array().reshape(-1))
    # Optional trailing constraint sections (tag u8 + body).  Absent for
    # unconstrained instances, so those encode byte-identically to wire
    # version 1 before constraints existed — the golden fixtures pin it.
    if instance.deadline is not None:
        w.u8(_TRAILER_DEADLINE)
        w.f64(instance.deadline)
    return w.bytes()


def decode_instance(buf: bytes | memoryview) -> "Instance":
    """Rebuild an :class:`~repro.instance.Instance` from its wire form.

    Reads packed sections straight out of the buffer (``memoryview``
    slices, no intermediate document) and replays the original
    construction order, so iteration orders — and therefore scheduling
    results — are identical to the instance that was encoded.
    """
    import numpy as np

    from repro.dag.graph import TaskDAG
    from repro.dag.task import Task
    from repro.instance import Instance
    from repro.machine.cluster import Machine
    from repro.machine.comm import (
        LinkCommunication,
        UniformCommunication,
        ZeroCommunication,
    )
    from repro.machine.etc import ETCMatrix
    from repro.machine.processor import Processor

    r = _open(buf, KIND_INSTANCE)
    name = r.str()
    dag_name = r.str()
    machine_name = r.str()
    n = r.u32()
    q = r.u32()
    n_edges = r.u32()

    task_ids = r.ids()
    if len(task_ids) != n:
        raise WireFormatError(f"task table holds {len(task_ids)} ids, expected {n}")
    costs = r.f64s()
    names = [r.str() for _ in range(n)]
    attrs: dict[int, dict] = {}
    for _ in range(r.u32()):
        i = r.u32()
        attrs[i] = json.loads(r.str())

    src = r.u32s()
    dst = r.u32s()
    data = r.f64s()
    if not (len(src) == len(dst) == len(data) == n_edges):
        raise WireFormatError(
            f"edge sections disagree: {len(src)}/{len(dst)}/{len(data)} vs {n_edges}"
        )

    proc_ids = r.ids()
    if len(proc_ids) != q:
        raise WireFormatError(f"proc table holds {len(proc_ids)} ids, expected {q}")
    speeds = r.f64s()
    proc_names = [r.str() for _ in range(q)]

    comm_tag = r.u8()
    if comm_tag == _COMM_ZERO:
        comm = ZeroCommunication()
    elif comm_tag == _COMM_UNIFORM:
        comm = UniformCommunication(r.f64(), r.f64())
    elif comm_tag == _COMM_LINKS:
        lat: dict = {p: {} for p in proc_ids}
        bw: dict = {p: {} for p in proc_ids}
        for _ in range(r.u32()):
            s = proc_ids[r.u32()]
            d = proc_ids[r.u32()]
            lat[s][d] = r.f64()
            bw[s][d] = r.f64()
        comm = LinkCommunication(proc_ids, lat, bw)
    else:
        raise WireFormatError(f"unknown communication tag {comm_tag}")

    etc_task_perm = r.u32s()
    etc_proc_perm = r.u32s()
    etc_values = r.f64s()
    rows, cols = len(etc_task_perm), len(etc_proc_perm)
    if len(etc_values) != rows * cols:
        raise WireFormatError(
            f"ETC block holds {len(etc_values)} values, expected {rows}x{cols}"
        )

    # Trailing constraint sections (absent in pre-constraint encodings).
    deadline = None
    while not r.done():
        tag = r.u8()
        if tag == _TRAILER_DEADLINE:
            deadline = r.f64()
        else:
            raise WireFormatError(f"unknown instance trailer tag {tag}")

    try:
        dag = TaskDAG(dag_name)
        for i, tid in enumerate(task_ids):
            dag.add_task(Task(id=tid, cost=costs[i], name=names[i],
                              attrs=attrs.get(i, {})))
        for k in range(n_edges):
            dag.add_edge(task_ids[src[k]], task_ids[dst[k]], data=data[k])
        machine = Machine(
            [Processor(id=p, speed=speeds[j], name=proc_names[j])
             for j, p in enumerate(proc_ids)],
            comm, name=machine_name,
        )
        etc = ETCMatrix(
            [task_ids[i] for i in etc_task_perm],
            [proc_ids[j] for j in etc_proc_perm],
            np.array(etc_values, dtype=float).reshape(rows, cols),
        )
        return Instance(dag=dag, machine=machine, etc=etc, name=name,
                        deadline=deadline)
    except IndexError:
        raise WireFormatError("wire instance references an out-of-range index") from None


# ----------------------------------------------------------------------
# request
# ----------------------------------------------------------------------
_REQ_HAS_TIMEOUT = 1
_REQ_HAS_TRACE = 2
_REQ_NO_INSTANCE = 4


def encode_request(instance: "Instance", alg: str, timeout: float | None = None,
                   trace_id: str | None = None,
                   instance_bytes: bytes | None = None,
                   fingerprint: str | None = None,
                   compact: bool = False) -> bytes:
    """Assemble the binary body of a ``POST /v1/schedule`` request.

    ``instance_bytes`` (an already-encoded instance message) skips
    re-encoding — the client memoises encoded instances by fingerprint
    the same way it memoises JSON bodies.

    ``fingerprint`` is the instance's content address.  Carrying it in
    the request lets the server answer a warm hit by direct cache-key
    lookup — no body hashing, no instance decode.  It is only ever a
    lookup hint: entries are stored under the key the *server* computes
    from the decoded instance, so a wrong claim merely misses and gets
    recomputed honestly.

    ``compact=True`` omits the instance blob entirely — a content-
    addressed request a few dozen bytes long.  Valid only with a
    ``fingerprint``; the server answers from its cache or rejects with
    an ``unknown instance fingerprint`` error, upon which the client
    resends the full form.
    """
    w = _Writer(KIND_REQUEST)
    w.str(alg)
    w.str(fingerprint if fingerprint is not None
          else (instance.fingerprint() if instance is not None else ""))
    flags = (_REQ_HAS_TIMEOUT if timeout is not None else 0) | (
        _REQ_HAS_TRACE if trace_id is not None else 0
    ) | (_REQ_NO_INSTANCE if compact else 0)
    w.u8(flags)
    if timeout is not None:
        w.f64(float(timeout))
    if trace_id is not None:
        w.str(trace_id)
    if not compact:
        w.blob(instance_bytes if instance_bytes is not None
               else encode_instance(instance))
    return w.bytes()


def decode_request(
    buf: bytes | memoryview,
) -> tuple[memoryview | None, str, str, float | None, str | None]:
    """Split a binary request into ``(instance_blob, alg, fingerprint,
    timeout, trace_id)``.

    The nested instance message is returned *encoded* (a zero-copy
    ``memoryview``): the server decodes it via :func:`decode_instance`
    only on a cache miss, and ships the same bytes to the worker, which
    decodes packed arrays without any intermediate JSON document.
    ``fingerprint`` is the client's claimed content address (empty
    string when absent) — a cache lookup hint, never a storage key.
    ``instance_blob`` is ``None`` for a compact (fingerprint-only)
    request.
    """
    r = _open(buf, KIND_REQUEST)
    alg = r.str()
    fingerprint = r.str()
    flags = r.u8()
    timeout = r.f64() if flags & _REQ_HAS_TIMEOUT else None
    trace_id = r.str() if flags & _REQ_HAS_TRACE else None
    if flags & _REQ_NO_INSTANCE:
        if not fingerprint:
            raise WireFormatError("compact request carries no fingerprint")
        blob = None
    else:
        blob = r.blob()
    if timeout is not None and timeout <= 0:
        raise WireFormatError(f"timeout must be > 0, got {timeout}")
    return blob, alg, fingerprint, timeout, trace_id


def peek_request_fingerprint(buf: bytes | memoryview) -> str:
    """The fingerprint a binary request carries, from its fixed prefix.

    Requests put ``alg`` and ``fingerprint`` immediately after the
    header, before flags and the instance blob, precisely so a router
    can read its routing key without touching (or validating) the
    potentially-large remainder.  Returns ``""`` when the request
    carries no fingerprint; raises :class:`WireFormatError` /
    :class:`WireVersionError` like :func:`decode_request` when even the
    prefix is malformed.
    """
    r = _open(buf, KIND_REQUEST)
    r.str()  # alg
    return r.str()


# ----------------------------------------------------------------------
# schedule payload (the cache-value form)
# ----------------------------------------------------------------------
def encode_payload(payload: dict) -> bytes:
    """Serialise one response payload (:func:`~repro.service.protocol.
    schedule_payload` form) into flat placement arrays.

    Task/processor ids are interned into per-message tables; the
    placements become four packed arrays plus a duplicate bitset.
    Content-addressed cache entries are immutable, so the server encodes
    each payload once and serves the same bytes to every warm hit.
    """
    from repro.utils.encoding import decode_id

    placements = payload["placements"]
    w = _Writer(KIND_PAYLOAD)
    # Fixed-width scalars first (one struct for lazy readers), then the
    # variable-length names, then the arrays.
    w.parts.append(_PAYLOAD_PREFIX.pack(
        int(payload["num_tasks"]),
        int(payload["num_procs"]),
        int(payload.get("num_duplicates", 0)),
        len(placements),
        float(payload["makespan"]),
    ))
    w.str(payload["alg"])
    w.str(str(payload.get("instance", "")))
    task_table: dict = {}
    proc_table: dict = {}
    task_refs: list[int] = []
    proc_refs: list[int] = []
    for rec in placements:
        task = decode_id(rec["task"])
        proc = decode_id(rec["proc"])
        task_refs.append(task_table.setdefault(task, len(task_table)))
        proc_refs.append(proc_table.setdefault(proc, len(proc_table)))
    w.ids(list(task_table))
    w.ids(list(proc_table))
    w.u32s(task_refs)
    w.u32s(proc_refs)
    w.f64s(float(rec["start"]) for rec in placements)
    w.f64s(float(rec["end"]) for rec in placements)
    bits = bytearray((len(placements) + 7) // 8)
    for i, rec in enumerate(placements):
        if rec.get("duplicate", False):
            bits[i >> 3] |= 1 << (i & 7)
    w.parts.append(bytes(bits))
    # Optional trailing sections.  The schedulability verdict is a small
    # nested document with no hot-path consumers, so it rides as its
    # canonical JSON encoding (sorted keys, compact separators) rather
    # than growing the packed-array vocabulary; payloads without it are
    # byte-identical to the pre-trailer encoding.
    schedulability = payload.get("schedulability")
    if schedulability is not None:
        w.u8(_TRAILER_SCHEDULABILITY)
        w.str(json.dumps(schedulability, sort_keys=True, separators=(",", ":")))
    return w.bytes()


def decode_payload(buf: bytes | memoryview) -> dict:
    """Inverse of :func:`encode_payload`: the exact payload dict back."""
    from repro.utils.encoding import encode_id

    r = _open(buf, KIND_PAYLOAD)
    num_tasks, num_procs, num_duplicates, count, makespan = (
        _PAYLOAD_PREFIX.unpack_from(r._take(_PAYLOAD_PREFIX.size))
    )
    alg = r.str()
    instance_name = r.str()
    task_ids = [encode_id(t) for t in r.ids()]
    proc_ids = [encode_id(p) for p in r.ids()]
    task_refs = r.u32s()
    proc_refs = r.u32s()
    starts = r.f64s()
    ends = r.f64s()
    bits = r._take((count + 7) // 8)
    if len(task_refs) != count or len(proc_refs) != count:
        raise WireFormatError("placement reference arrays disagree with count")
    if len(starts) != count or len(ends) != count:
        raise WireFormatError("placement time arrays disagree with count")
    # Bulk-convert the packed arrays once; indexing an ``array`` object
    # allocates a fresh Python object per access, which dominates warm
    # decode time at scale.
    dup_bits = int.from_bytes(bytes(bits), "little")
    try:
        placements = [
            {
                "task": task_ids[t],
                "proc": proc_ids[p],
                "start": s,
                "end": e,
                "duplicate": bool(dup_bits >> i & 1),
            }
            for i, (t, p, s, e) in enumerate(
                zip(task_refs.tolist(), proc_refs.tolist(),
                    starts.tolist(), ends.tolist())
            )
        ]
    except IndexError:
        raise WireFormatError("placement references an out-of-range id") from None
    out = {
        "alg": alg,
        "instance": instance_name,
        "num_tasks": num_tasks,
        "num_procs": num_procs,
        "makespan": makespan,
        "num_duplicates": num_duplicates,
        "placements": placements,
    }
    while not r.done():
        tag = r.u8()
        if tag == _TRAILER_SCHEDULABILITY:
            out["schedulability"] = json.loads(r.str())
        else:
            raise WireFormatError(f"unknown payload trailer tag {tag}")
    return out


# ----------------------------------------------------------------------
# response envelope
# ----------------------------------------------------------------------
_RSP_CACHE_HIT = 1
_RSP_HAS_TRACE = 2


def encode_response(payload_bytes: bytes, *, cache_hit: bool, fingerprint: str,
                    server_ms: float, trace_id: str | None = None) -> bytes:
    """Wrap one encoded payload in the per-request response envelope.

    The envelope carries exactly the fields the engine adds on top of
    the cached payload (``cache_hit``/``fingerprint``/``server_ms``/
    ``trace_id``) — they vary per request, the payload bytes never do,
    which is what lets a warm hit reuse the stored encoding verbatim.
    """
    w = _Writer(KIND_RESPONSE)
    flags = (_RSP_CACHE_HIT if cache_hit else 0) | (
        _RSP_HAS_TRACE if trace_id is not None else 0
    )
    w.u8(flags)
    w.f64(float(server_ms))
    w.str(fingerprint)
    if trace_id is not None:
        w.str(trace_id)
    w.blob(payload_bytes)
    return w.bytes()


def decode_response(buf: bytes | memoryview) -> dict:
    """Decode a binary response into the merged result dict.

    Returns the same shape the JSON path's ``answer["result"]`` has —
    the payload fields plus ``cache_hit``/``fingerprint``/``server_ms``
    (and ``trace_id`` when present) — so
    :meth:`~repro.service.protocol.ScheduleResult.from_payload` consumes
    either wire format unchanged.
    """
    return ResponseView(buf).payload


class ResponseView:
    """Zero-copy view of one binary schedule response.

    Construction parses only the envelope and the payload's scalar
    prefix (algorithm, instance name, makespan, counts) — a few dozen
    bytes.  The placement arrays stay untouched in the receive buffer
    until :attr:`payload` is first read, so a consumer that only needs
    the makespan never pays for materialising placement dicts.
    """

    __slots__ = ("cache_hit", "fingerprint", "server_ms", "trace_id",
                 "alg", "instance", "num_tasks", "num_procs", "makespan",
                 "num_duplicates", "num_placements", "_payload_buf",
                 "_payload")

    def __init__(self, buf: bytes | memoryview) -> None:
        r = _open(buf, KIND_RESPONSE)
        flags = r.u8()
        self.cache_hit = bool(flags & _RSP_CACHE_HIT)
        self.server_ms = r.f64()
        self.fingerprint = r.str()
        self.trace_id = r.str() if flags & _RSP_HAS_TRACE else None
        self._payload_buf = r.blob()
        p = _open(self._payload_buf, KIND_PAYLOAD)
        (self.num_tasks, self.num_procs, self.num_duplicates,
         self.num_placements, self.makespan) = (
            _PAYLOAD_PREFIX.unpack_from(p._take(_PAYLOAD_PREFIX.size))
        )
        self.alg = p.str()
        self.instance = p.str()
        self._payload = None

    @property
    def payload(self) -> dict:
        """The merged result dict, materialised on first access and
        memoised — identical to what the JSON path's ``answer["result"]``
        carries."""
        if self._payload is None:
            result = decode_payload(self._payload_buf)
            result["cache_hit"] = self.cache_hit
            result["fingerprint"] = self.fingerprint
            result["server_ms"] = self.server_ms
            if self.trace_id is not None:
                result["trace_id"] = self.trace_id
            self._payload = result
        return self._payload
