"""Tests for schedule diffing."""

import pytest

from repro.dag.generators import random_dag
from repro.exceptions import ScheduleError
from repro.instance import make_instance
from repro.schedule.diff import diff_report, diff_schedules
from repro.schedulers.cpop import CPOP
from repro.schedulers.heft import HEFT
from repro.core import ImprovedScheduler


@pytest.fixture(scope="module")
def instance():
    return make_instance(random_dag(30, seed=5), num_procs=3, seed=5)


class TestDiffSchedules:
    def test_identical(self, instance):
        a = HEFT().schedule(instance)
        b = HEFT().schedule(instance)
        d = diff_schedules(a, b)
        assert d.identical
        assert d.moves == []

    def test_different_algorithms_differ(self, instance):
        a = HEFT().schedule(instance)
        b = CPOP().schedule(instance)
        d = diff_schedules(a, b)
        assert not d.identical
        assert len(d.moves) > 0
        assert d.makespan_delta == pytest.approx(b.makespan - a.makespan)

    def test_move_fields(self, instance):
        a = HEFT().schedule(instance)
        b = CPOP().schedule(instance)
        d = diff_schedules(a, b)
        for m in d.moves:
            assert m.start_a == a.start_of(m.task)
            assert m.start_b == b.start_of(m.task)
            if m.moved_processor:
                assert a.proc_of(m.task) != b.proc_of(m.task)

    def test_duplicates_counted(self, instance):
        a = HEFT().schedule(instance)
        b = ImprovedScheduler().schedule(instance)
        d = diff_schedules(a, b)
        assert d.duplicates_a == 0
        assert d.duplicates_b == b.num_duplicates()

    def test_mismatched_tasks_rejected(self, instance):
        other = make_instance(random_dag(10, seed=6), num_procs=3, seed=6)
        a = HEFT().schedule(instance)
        b = HEFT().schedule(other)
        with pytest.raises(ScheduleError):
            diff_schedules(a, b)

    def test_symmetry_of_delta(self, instance):
        a = HEFT().schedule(instance)
        b = CPOP().schedule(instance)
        assert diff_schedules(a, b).makespan_delta == pytest.approx(
            -diff_schedules(b, a).makespan_delta
        )


class TestDiffReport:
    def test_identical_message(self, instance):
        a = HEFT().schedule(instance)
        assert "identical" in diff_report(a, HEFT().schedule(instance))

    def test_report_contents(self, instance):
        a = HEFT().schedule(instance)
        b = CPOP().schedule(instance)
        text = diff_report(a, b, top=3)
        assert "delta:" in text
        assert "placements differing" in text

    def test_truncation(self, instance):
        a = HEFT().schedule(instance)
        b = CPOP().schedule(instance)
        d = diff_schedules(a, b)
        if len(d.moves) > 2:
            assert "more" in diff_report(a, b, top=2)
