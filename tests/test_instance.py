"""Tests for repro.instance."""

import pytest

from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import ConfigurationError
from repro.instance import (
    Instance,
    homogeneous_instance,
    make_instance,
    speed_scaled_instance,
)
from repro.machine.cluster import Machine
from repro.machine.etc import ETCMatrix, etc_from_speeds

import numpy as np


class TestInstanceConstruction:
    def test_etc_must_cover_tasks(self, diamond_dag):
        machine = Machine.homogeneous(2)
        etc = ETCMatrix(["a"], [0, 1], np.ones((1, 2)))
        with pytest.raises(ConfigurationError):
            Instance(dag=diamond_dag, machine=machine, etc=etc)

    def test_etc_must_cover_procs(self, diamond_dag):
        machine = Machine.homogeneous(3)
        etc = ETCMatrix(list(diamond_dag.tasks()), [0, 1], np.ones((4, 2)))
        with pytest.raises(ConfigurationError):
            Instance(dag=diamond_dag, machine=machine, etc=etc)

    def test_default_name(self, diamond_dag):
        machine = Machine.homogeneous(2)
        inst = Instance(diamond_dag, machine, etc_from_speeds(diamond_dag, machine))
        assert diamond_dag.name in inst.name


class TestCostQueries:
    def test_exec_and_avg(self, diamond_dag):
        machine = Machine.from_speeds([1.0, 2.0])
        inst = Instance(diamond_dag, machine, etc_from_speeds(diamond_dag, machine))
        assert inst.exec_time("b", 1) == pytest.approx(2.0)
        assert inst.avg_exec_time("b") == pytest.approx((4.0 + 2.0) / 2)

    def test_comm_queries(self, diamond_dag):
        inst = homogeneous_instance(diamond_dag, num_procs=2, bandwidth=2.0, latency=1.0)
        assert inst.comm_time("a", "b", 0, 0) == 0.0
        assert inst.comm_time("a", "b", 0, 1) == pytest.approx(1.0 + 1.5)
        assert inst.avg_comm_time("a", "b") == pytest.approx(2.5)

    def test_counts(self, diamond_instance):
        assert diamond_instance.num_tasks == 4
        assert diamond_instance.num_procs == 3


class TestDerivedBounds:
    def test_sequential_time_homogeneous(self, diamond_dag):
        inst = homogeneous_instance(diamond_dag, num_procs=2)
        assert inst.sequential_time == pytest.approx(diamond_dag.total_cost())

    def test_sequential_time_picks_best_proc(self, diamond_dag):
        inst = speed_scaled_instance(diamond_dag, speeds=[1.0, 2.0])
        assert inst.sequential_time == pytest.approx(diamond_dag.total_cost() / 2.0)

    def test_cp_min_length_homogeneous(self, diamond_dag):
        inst = homogeneous_instance(diamond_dag, num_procs=2)
        # a -> b -> d = 2 + 4 + 2 (no comm, min=nominal)
        assert inst.cp_min_length == pytest.approx(8.0)

    def test_cp_min_uses_best_times(self, diamond_dag):
        inst = speed_scaled_instance(diamond_dag, speeds=[1.0, 4.0])
        assert inst.cp_min_length == pytest.approx(8.0 / 4.0)

    def test_empty_dag(self):
        dag = TaskDAG("empty")
        machine = Machine.homogeneous(2)
        inst = Instance(dag, machine, etc_from_speeds(dag, machine))
        assert inst.sequential_time == 0.0
        assert inst.cp_min_length == 0.0


class TestHomogeneityDetection:
    def test_homogeneous_true(self, diamond_dag):
        assert homogeneous_instance(diamond_dag, num_procs=3).is_homogeneous()

    def test_heterogeneous_false(self, diamond_dag):
        inst = make_instance(diamond_dag, num_procs=3, heterogeneity=1.0, seed=1)
        assert not inst.is_homogeneous()

    def test_beta_zero_is_homogeneous(self, diamond_dag):
        inst = make_instance(diamond_dag, num_procs=3, heterogeneity=0.0, seed=1)
        assert inst.is_homogeneous()


class TestBuilders:
    def test_make_instance_seeded(self, diamond_dag):
        a = make_instance(diamond_dag, num_procs=3, seed=5)
        b = make_instance(diamond_dag, num_procs=3, seed=5)
        assert (a.etc.as_array() == b.etc.as_array()).all()

    def test_make_instance_consistency_passthrough(self, diamond_dag):
        inst = make_instance(
            diamond_dag, num_procs=4, heterogeneity=1.0, consistency="consistent", seed=2
        )
        assert inst.etc.is_consistent()

    def test_speed_scaled(self, diamond_dag):
        inst = speed_scaled_instance(diamond_dag, speeds=[1.0, 2.0], bandwidth=4.0)
        assert inst.num_procs == 2
        assert inst.exec_time("a", 1) == pytest.approx(1.0)
