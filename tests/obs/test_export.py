"""Exporter behaviour: JSONL, Chrome trace_event (golden), Prometheus,
well-formedness validation and file output."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import (
    Tracer,
    render_trace,
    span_tree,
    to_chrome,
    to_jsonl,
    to_prometheus,
    trace_format_for_path,
    validate_trace,
    write_trace,
)

FIXTURE = Path(__file__).parent / "golden_chrome_trace.json"


def _golden_tracer() -> Tracer:
    """A fully deterministic trace: injected integer clock, fixed shape.

    Regenerate the committed fixture after an intentional format change
    with::

        PYTHONPATH=src python -c "import json; from tests.obs.test_export \
import _golden_tracer; from repro.obs import to_chrome; print(json.dumps(\
to_chrome(_golden_tracer(), normalize_ids=True), indent=1))" \
> tests/obs/golden_chrome_trace.json
    """
    state = {"t": 0.0}

    def clock() -> float:
        state["t"] += 1.0
        return state["t"]

    tracer = Tracer(name="golden", clock=clock)
    with tracer.span("sched.run", alg="HEFT", tasks=3):
        with tracer.span("sched.rank"):
            pass
        with tracer.span("sched.place"):
            for task in ("a", "b", "c"):
                with tracer.span("sched.insert", task=task):
                    pass
    tracer.count("sched.tasks_placed", 3)
    tracer.gauge("trace.depth", 3)
    return tracer


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def test_chrome_export_matches_golden_fixture():
    doc = to_chrome(_golden_tracer(), normalize_ids=True)
    # Round-trip through JSON so number formatting matches the file.
    assert json.loads(json.dumps(doc)) == json.loads(FIXTURE.read_text())


def test_chrome_events_are_rebased_complete_events():
    doc = to_chrome(_golden_tracer())
    events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert events, "no span events exported"
    assert min(e["ts"] for e in events) == 0.0  # rebased to earliest span
    assert all(e["dur"] >= 0.0 for e in events)
    assert all(e["cat"] == "repro" for e in events)
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert meta and meta[0]["name"] == "process_name"


def test_chrome_attrs_fall_back_to_str():
    tracer = Tracer()
    with tracer.span("s", weird=object()):
        pass
    doc = to_chrome(tracer)
    (event,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert isinstance(event["args"]["weird"], str)
    json.dumps(doc)  # the whole document must be JSON-serialisable


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def test_jsonl_lines_parse_and_order_by_start():
    text = to_jsonl(_golden_tracer())
    lines = [json.loads(line) for line in text.strip().split("\n")]
    spans = [l for l in lines if l["type"] == "span"]
    assert [s["name"] for s in spans] == [
        "sched.run", "sched.rank", "sched.place",
        "sched.insert", "sched.insert", "sched.insert",
    ]
    assert spans == sorted(spans, key=lambda s: s["t0"])
    assert lines[-2] == {"type": "counters", "values": {"sched.tasks_placed": 3}}
    assert lines[-1] == {"type": "gauges", "values": {"trace.depth": 3}}


def test_jsonl_of_empty_trace_is_empty():
    assert to_jsonl(Tracer()) == ""


# ----------------------------------------------------------------------
# Prometheus
# ----------------------------------------------------------------------
def test_prometheus_counters_and_gauges():
    text = to_prometheus(_golden_tracer())
    assert "repro_obs_sched_tasks_placed_total 3\n" in text
    assert "repro_obs_trace_depth 3" in text  # gauge: no _total suffix
    assert to_prometheus(Tracer()) == ""  # empty trace -> empty exposition


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _span(sid, name, t0, t1, parent=None):
    return {"name": name, "id": sid, "parent": parent, "pid": 1, "tid": 1,
            "t0": t0, "t1": t1, "attrs": {}}


def test_validate_trace_flags_duplicate_ids():
    trace = {"spans": [_span(1, "a", 0, 1), _span(1, "b", 0, 1)]}
    assert any("duplicate span id 1" in p for p in validate_trace(trace))


def test_validate_trace_flags_negative_duration():
    trace = {"spans": [_span(1, "a", 5.0, 4.0)]}
    assert any("negative duration" in p for p in validate_trace(trace))


def test_validate_trace_flags_child_escaping_parent():
    trace = {"spans": [_span(1, "parent", 0.0, 1.0),
                       _span(2, "child", 0.5, 2.0, parent=1)]}
    assert any("escapes parent" in p for p in validate_trace(trace))


def test_validate_trace_accepts_sound_trace():
    assert validate_trace(_golden_tracer()) == []


def test_span_tree_orphans_become_roots():
    trace = {"spans": [_span(2, "orphan", 0.0, 1.0, parent=99)]}
    tree = span_tree(trace)
    assert [s["name"] for s in tree[None]] == ["orphan"]


# ----------------------------------------------------------------------
# file output
# ----------------------------------------------------------------------
def test_trace_format_for_path():
    assert trace_format_for_path("x.jsonl") == "jsonl"
    assert trace_format_for_path("x.json") == "chrome"
    assert trace_format_for_path("trace") == "chrome"


def test_render_trace_rejects_unknown_format():
    with pytest.raises(ValueError, match="unknown trace format"):
        render_trace(Tracer(), "xml")


def test_write_trace_infers_format_from_suffix(tmp_path):
    tracer = _golden_tracer()
    chrome = write_trace(tracer, tmp_path / "t.json")
    jsonl = write_trace(tracer, tmp_path / "t.jsonl")
    assert "traceEvents" in json.loads(chrome.read_text())
    first = json.loads(jsonl.read_text().splitlines()[0])
    assert first["type"] == "span"
