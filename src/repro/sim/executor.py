"""Execute a static schedule on the discrete-event engine.

Semantics: each processor executes its assigned copies in the order of
their planned start times (a static schedule fixes the *sequence*, not
the wall-clock times); a copy begins as soon as its processor is free
and, for every parent task, data from at least one copy of that parent
has arrived locally.  Durations come from a :class:`NoiseModel` (the
identity by default), so with no noise the simulation independently
re-derives — and for the semi-active schedules all built-in schedulers
produce, exactly reproduces — the analytic makespan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.instance import Instance
from repro.schedule.schedule import Schedule, ScheduledTask
from repro.sim.engine import EventQueue, SimulationError
from repro.sim.noise import NoiseModel, NoNoise
from repro.types import ProcId, TaskId


@dataclass(frozen=True)
class SimulatedCopy:
    """Simulated execution record of one copy."""

    task: TaskId
    proc: ProcId
    start: float
    end: float
    planned: ScheduledTask


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated run."""

    makespan: float
    copies: list[SimulatedCopy]
    events_processed: int

    def end_of(self, task: TaskId) -> float:
        """Earliest simulated finish among the task's copies."""
        ends = [c.end for c in self.copies if c.task == task]
        if not ends:
            raise SimulationError(f"task {task!r} was not simulated")
        return min(ends)


def execute(
    schedule: Schedule,
    instance: Instance,
    noise: NoiseModel | None = None,
    link_contention: bool = False,
) -> SimulationResult:
    """Simulate ``schedule`` on ``instance``; returns the realised times.

    The schedule must be complete (every DAG task placed).  Raises
    :class:`SimulationError` on deadlock, which would indicate an
    infeasible schedule.

    ``link_contention=True`` serialises transfers per directed processor
    pair (FIFO), breaking the contention-free assumption every static
    scheduler in this library plans with — the resulting makespan
    inflation measures the analytic model's error (experiment E17).
    """
    noise = noise or NoNoise()
    dag = instance.dag
    comm_factor = noise.comm_factor()

    # Per-processor copy sequences in planned order.
    sequences: dict[ProcId, list[ScheduledTask]] = {
        p: schedule.proc_entries(p) for p in schedule.machine.proc_ids()
    }
    key = lambda c: (c.task, c.proc, c.start)  # noqa: E731 - copy identity

    # Bookkeeping per copy: which parents still lack local data.
    waiting: dict[tuple, set[TaskId]] = {}
    queue_index: dict[ProcId, int] = {p: 0 for p in sequences}
    proc_free_at: dict[ProcId, float] = {p: 0.0 for p in sequences}
    started: set[tuple] = set()
    finished_copies: list[SimulatedCopy] = []

    all_copies: list[ScheduledTask] = []
    for p, seq in sequences.items():
        all_copies.extend(seq)
    for copy in all_copies:
        waiting[key(copy)] = set(dag.predecessors(copy.task))

    q = EventQueue()

    def try_start_next(proc: ProcId) -> None:
        """Start the next queued copy on ``proc`` if it is ready now."""
        idx = queue_index[proc]
        seq = sequences[proc]
        if idx >= len(seq):
            return
        copy = seq[idx]
        k = key(copy)
        if k in started or waiting[k]:
            return
        start = max(q.now, proc_free_at[proc])
        duration = noise.duration(copy.task, copy.proc, copy.duration)
        started.add(k)
        queue_index[proc] += 1
        proc_free_at[proc] = start + duration
        q.push(start + duration, "finish", (copy, start))

    # Directed-link FIFO state for the contention model: the time each
    # (src, dst) pair's channel frees up.
    link_free: dict[tuple[ProcId, ProcId], float] = {}

    def on_finish(copy: ScheduledTask, start: float) -> None:
        finished_copies.append(
            SimulatedCopy(task=copy.task, proc=copy.proc, start=start, end=q.now, planned=copy)
        )
        # Deliver data to every processor hosting a consumer copy.
        for child in dag.successors(copy.task):
            dests = {c.proc for c in schedule.copies(child)}
            for dest in dests:
                delay = instance.comm_time(copy.task, child, copy.proc, dest) * comm_factor
                if link_contention and delay > 0 and dest != copy.proc:
                    link = (copy.proc, dest)
                    depart = max(q.now, link_free.get(link, 0.0))
                    link_free[link] = depart + delay
                    q.push(depart + delay, "arrive", (copy.task, child, dest))
                else:
                    q.push(q.now + delay, "arrive", (copy.task, child, dest))
        try_start_next(copy.proc)

    def on_arrive(parent: TaskId, child: TaskId, dest: ProcId) -> None:
        for child_copy in schedule.copies(child):
            if child_copy.proc != dest:
                continue
            k = key(child_copy)
            waiting[k].discard(parent)
        try_start_next(dest)

    def handler(ev) -> None:
        if ev.kind == "finish":
            on_finish(*ev.payload)
        elif ev.kind == "arrive":
            on_arrive(*ev.payload)
        elif ev.kind == "kick":
            try_start_next(ev.payload)
        else:  # pragma: no cover - internal
            raise SimulationError(f"unknown event kind {ev.kind!r}")

    for p in sequences:
        q.push(0.0, "kick", p)

    processed = q.drain(handler)

    if len(finished_copies) != len(all_copies):
        stuck = [key(c) for c in all_copies if key(c) not in started]
        raise SimulationError(
            f"deadlock: {len(stuck)} copies never started, e.g. {stuck[:3]}"
        )
    makespan = max((c.end for c in finished_copies), default=0.0)
    return SimulationResult(
        makespan=makespan, copies=finished_copies, events_processed=processed
    )
