"""Name-based scheduler registry.

The CLI and the bench harness refer to schedulers by name; the registry
maps names to zero-argument factories so each experiment run gets a
fresh scheduler object (some schedulers keep per-run state).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.exceptions import ConfigurationError
from repro.schedulers.base import Scheduler

_REGISTRY: dict[str, Callable[[], Scheduler]] = {}


def register_scheduler(name: str, factory: Callable[[], Scheduler]) -> None:
    """Register a scheduler factory under a unique name."""
    if name in _REGISTRY:
        raise ConfigurationError(f"scheduler {name!r} already registered")
    _REGISTRY[name] = factory


def get_scheduler(name: str) -> Scheduler:
    """Instantiate the scheduler registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown scheduler {name!r}; known: {known}") from None
    return factory()


def all_scheduler_names() -> list[str]:
    """All registered names, sorted."""
    return sorted(_REGISTRY)


def get_schedulers(names: Iterable[str]) -> list[Scheduler]:
    """Instantiate several schedulers by name."""
    return [get_scheduler(n) for n in names]


def _register_builtins() -> None:
    # Imported lazily to avoid circular imports at package load.
    from repro.schedulers.baselines import RandomScheduler, RoundRobinScheduler
    from repro.schedulers.cpop import CPOP
    from repro.schedulers.dls import DLS
    from repro.schedulers.duplication_tds import TDS
    from repro.schedulers.etf import ETF
    from repro.schedulers.hcpt import HCPT
    from repro.schedulers.heft import HEFT
    from repro.schedulers.hlfet import HLFET
    from repro.schedulers.lmt import LMT
    from repro.schedulers.mcp import MCP
    from repro.schedulers.optimal import BranchAndBoundScheduler
    from repro.schedulers.peft import PEFT
    from repro.schedulers.pets import PETS

    register_scheduler("HEFT", HEFT)
    register_scheduler("HEFT-median", lambda: HEFT(agg="median"))
    register_scheduler("HEFT-best", lambda: HEFT(agg="best"))
    register_scheduler("HEFT-worst", lambda: HEFT(agg="worst"))
    register_scheduler("CPOP", CPOP)
    register_scheduler("HCPT", HCPT)
    register_scheduler("PETS", PETS)
    register_scheduler("PEFT", PEFT)
    register_scheduler("DLS", DLS)
    register_scheduler("ETF", ETF)
    register_scheduler("MCP", MCP)
    register_scheduler("HLFET", HLFET)
    register_scheduler("LMT", LMT)
    register_scheduler("TDS", TDS)
    register_scheduler("Random", RandomScheduler)
    register_scheduler("RoundRobin", RoundRobinScheduler)
    register_scheduler("OPT-BB", BranchAndBoundScheduler)

    from repro.schedulers.clustering import DSC, LinearClustering
    from repro.schedulers.meta import GeneticScheduler, SimulatedAnnealingScheduler

    register_scheduler("DSC", DSC)
    register_scheduler("LC", LinearClustering)
    register_scheduler("SA", SimulatedAnnealingScheduler)
    register_scheduler("GA", GeneticScheduler)

    from repro.core import (
        DuplicationScheduler,
        ImprovedScheduler,
        LookaheadScheduler,
    )

    register_scheduler("IMP", ImprovedScheduler)
    register_scheduler("LA-HEFT", LookaheadScheduler)
    register_scheduler("DUP-HEFT", DuplicationScheduler)

    from repro.schedulers.resilient import ResilientScheduler

    register_scheduler("FT-HEFT-k1", lambda: ResilientScheduler(HEFT(), k=1))
    register_scheduler("FT-HEFT-k2", lambda: ResilientScheduler(HEFT(), k=2))
    register_scheduler("FT-IMP-k1", lambda: ResilientScheduler(ImprovedScheduler(), k=1))
    register_scheduler("FT-IMP-k2", lambda: ResilientScheduler(ImprovedScheduler(), k=2))


_register_builtins()
