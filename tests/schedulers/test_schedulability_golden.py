"""Golden schedulability verdicts over the deadline-annotated corpus.

For every member of ``tests.population.build_deadline_population`` the
fixture pins, with exact float equality:

* the planned verdict of the plain HEFT schedule
  (:func:`repro.schedulers.resilient.schedulability_doc`);
* the worst-case k=1 verdict of the FT-HEFT-k1 schedule
  (:func:`repro.schedulers.resilient.schedulability_report`).

Any drift in the generators, the deadline anchoring, the resilient
placement or the degraded-timeline analysis shows up here with the
precise corpus member that moved.  Regenerate after an intentional
change with:

    PYTHONPATH=src:. python tests/schedulers/test_schedulability_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.schedulers.registry import get_scheduler
from repro.schedulers.resilient import schedulability_doc, schedulability_report
from tests.population import build_deadline_population

FIXTURE = Path(__file__).with_name("golden_schedulability.json")


def _compute_all() -> dict[str, dict]:
    out: dict[str, dict] = {}
    for label, inst in build_deadline_population():
        planned = schedulability_doc(get_scheduler("HEFT").schedule(inst), inst)
        ft = get_scheduler("FT-HEFT-k1").schedule(inst)
        report = schedulability_report(ft, inst, k=1)
        out[label] = {
            "deadline": inst.deadline,
            "planned_schedulable": planned["schedulable"],
            "planned_makespan": planned["makespan"],
            "planned_slack": planned["slack"],
            "k1_schedulable": report.schedulable,
            "k1_fault_free_makespan": report.fault_free_makespan,
            "k1_worst_makespan": report.worst_makespan,
            "k1_witness": list(report.witness) if report.witness is not None else None,
        }
    return out


@pytest.fixture(scope="module")
def golden() -> dict[str, dict]:
    with FIXTURE.open() as fh:
        return json.load(fh)


def test_fixture_covers_every_corpus_member(golden):
    labels = [label for label, _ in build_deadline_population()]
    assert sorted(golden) == sorted(labels)


def test_verdicts_match_golden(golden):
    computed = _compute_all()
    for label, expected in golden.items():
        got = computed[label]
        for field, want in expected.items():
            assert got[field] == want, (label, field, want, got[field])


def test_tightness_levels_behave_as_named(golden):
    # infeasible deadlines are never met, loose planned deadlines always
    # are — the corpus actually spans the verdict space.
    for label, rec in golden.items():
        if label.endswith("infeasible"):
            assert not rec["planned_schedulable"], label
            assert not rec["k1_schedulable"], label
        if label.endswith("loose"):
            assert rec["planned_schedulable"], label
    assert any(rec["k1_schedulable"] for rec in golden.values())
    assert any(
        rec["planned_schedulable"] and not rec["k1_schedulable"]
        for rec in golden.values()
    ), "corpus should include a deadline met in planning but lost to faults"


if __name__ == "__main__":
    FIXTURE.write_text(json.dumps(_compute_all(), indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")
