"""Unit tests for k-backup resilient scheduling and deadline analysis."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import workloads as W
from repro.exceptions import SchedulingError
from repro.schedule.validation import validate
from repro.schedulers.heft import HEFT
from repro.schedulers.registry import all_scheduler_names, get_scheduler
from repro.schedulers.resilient import (
    ResilientScheduler,
    predict_degraded,
    schedulability_doc,
    schedulability_report,
)
from repro.service.protocol import schedule_payload
from repro.sim.executor import execute


@pytest.fixture(scope="module")
def inst():
    return W.random_instance(np.random.default_rng(5), num_tasks=12, num_procs=4)


def test_registered_names():
    names = all_scheduler_names()
    for name in ("FT-HEFT-k1", "FT-HEFT-k2", "FT-IMP-k1", "FT-IMP-k2"):
        assert name in names
        sched = get_scheduler(name)
        assert isinstance(sched, ResilientScheduler)
        assert sched.name == name


def test_k0_is_base_passthrough(inst):
    base = HEFT()
    ft = ResilientScheduler(HEFT(), k=0)
    a = json.dumps(schedule_payload(ft.schedule(inst), inst, "HEFT"), sort_keys=True)
    b = json.dumps(schedule_payload(base.schedule(inst), inst, "HEFT"), sort_keys=True)
    assert a == b


def test_copies_on_disjoint_processors(inst):
    for k in (1, 2, 3):
        sched = ResilientScheduler(HEFT(), k=k).schedule(inst)
        validate(sched, inst)
        for t in inst.dag.tasks():
            procs = {c.proc for c in sched.copies(t)}
            assert len(procs) == k + 1, (k, t)


def test_effective_k_caps_at_machine_size():
    small = W.random_instance(np.random.default_rng(9), num_tasks=6, num_procs=2)
    sched = ResilientScheduler(HEFT(), k=2)
    assert sched.effective_k(small) == 1
    built = sched.schedule(small)
    validate(built, small)
    for t in small.dag.tasks():
        assert len({c.proc for c in built.copies(t)}) == 2


def test_strict_mode_raises_on_small_machine():
    small = W.random_instance(np.random.default_rng(9), num_tasks=6, num_procs=2)
    with pytest.raises(SchedulingError):
        ResilientScheduler(HEFT(), k=2, strict=True).schedule(small)


def test_string_base_resolved_via_registry():
    sched = ResilientScheduler("HEFT", k=1)
    assert sched.name == "FT-HEFT-k1"
    with pytest.raises(SchedulingError):
        ResilientScheduler("HEFT", k=-1)


def test_prediction_matches_planned_schedule_fault_free(inst):
    sched = get_scheduler("FT-HEFT-k1").schedule(inst)
    pred = predict_degraded(sched, inst)
    assert pred.makespan == sched.makespan
    assert pred.all_completed(inst)
    assert pred.aborted_copies == 0 and pred.unstarted_copies == 0
    real = execute(sched, inst)
    assert pred.task_ends == real.task_ends()


def test_report_loose_deadline_schedulable(inst):
    sched = get_scheduler("FT-HEFT-k1").schedule(inst)
    loose = inst.with_deadline(10.0 * sched.makespan)
    report = schedulability_report(sched, loose, k=1)
    assert report.schedulable
    assert report.witness is None
    assert report.fault_free_makespan == sched.makespan
    assert report.worst_makespan >= report.fault_free_makespan
    for t in inst.dag.tasks():
        assert report.slack(t) > 0


def test_report_infeasible_deadline(inst):
    sched = get_scheduler("FT-HEFT-k1").schedule(inst)
    doomed = inst.with_deadline(0.5 * sched.makespan)
    report = schedulability_report(sched, doomed, k=1)
    assert not report.schedulable
    assert report.witness == ()  # already missed with zero faults


def test_report_witness_replays_to_a_real_violation(inst):
    # An unreplicated schedule cannot survive losing a loaded processor:
    # the witness kill set must reproduce the violation in the simulator.
    sched = get_scheduler("HEFT").schedule(inst)
    bounded = inst.with_deadline(1.5 * sched.makespan)
    report = schedulability_report(sched, bounded, k=1)
    assert not report.schedulable
    assert report.witness
    real = execute(sched, inst, faults={p: 0.0 for p in report.witness})
    missed = not real.all_tasks_completed(inst) or any(
        end > bounded.deadline for end in real.task_ends().values()
    )
    assert missed


def test_report_rejects_bad_k(inst):
    sched = get_scheduler("HEFT").schedule(inst)
    with pytest.raises(SchedulingError):
        schedulability_report(sched, inst, k=-1)
    with pytest.raises(SchedulingError):
        schedulability_report(sched, inst, k=inst.num_procs + 1)


def test_schedulability_doc_shape(inst):
    sched = get_scheduler("FT-HEFT-k1").schedule(inst)
    annotated = inst.with_deadline(2.0 * sched.makespan)
    doc = schedulability_doc(sched, annotated)
    assert list(doc) == ["deadline", "makespan", "schedulable", "slack", "tasks"]
    assert doc["schedulable"] is True
    # completion time = latest earliest-finish over tasks; trailing
    # backup copies can end later, so it is <= the timeline makespan
    expected_finish = max(
        min(c.end for c in sched.copies(t)) for t in inst.dag.tasks()
    )
    assert doc["makespan"] == expected_finish <= sched.makespan
    assert doc["slack"] == annotated.deadline - expected_finish
    assert len(doc["tasks"]) == inst.dag.num_tasks
    for rec in doc["tasks"]:
        assert list(rec) == ["end", "met", "slack", "task"]
        assert rec["met"] is (rec["slack"] >= 0)
    # canonical: survives a sorted-keys JSON round trip byte-identically
    assert json.loads(json.dumps(doc, sort_keys=True)) == doc


def test_schedulability_doc_requires_deadline(inst):
    sched = get_scheduler("HEFT").schedule(inst)
    with pytest.raises(SchedulingError):
        schedulability_doc(sched, inst)


def test_deadline_survives_with_deadline_round_trip(inst):
    annotated = inst.with_deadline(42.0)
    assert annotated.deadline == 42.0
    assert annotated.dag is inst.dag and annotated.etc is inst.etc
    assert annotated.with_deadline(None).deadline is None
