"""Laplace-equation (wavefront/diamond) task graph.

The Laplace solver of the published experiments sweeps an ``n x n``
grid: cell task ``(i, j)`` depends on its north ``(i-1, j)`` and west
``(i, j-1)`` neighbours, producing the classic diamond-shaped wavefront
DAG with a single entry ``(0, 0)`` and a single exit ``(n-1, n-1)``.
Parallelism grows to ``n`` along the main anti-diagonal and shrinks
back — the pattern that stresses a scheduler's handling of pipelined
dependence chains.
"""

from __future__ import annotations

from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import ConfigurationError


def laplace_dag(
    grid_size: int,
    cost_scale: float = 10.0,
    data_scale: float = 10.0,
    name: str | None = None,
) -> TaskDAG:
    """Build the wavefront DAG for an ``n x n`` Laplace sweep."""
    n = grid_size
    if n < 1:
        raise ConfigurationError(f"grid_size must be >= 1, got {n}")
    if cost_scale <= 0 or data_scale < 0:
        raise ConfigurationError("cost_scale must be > 0 and data_scale >= 0")

    dag = TaskDAG(name or f"laplace-n{n}")
    for i in range(n):
        for j in range(n):
            dag.add_task(
                Task(id=(i, j), cost=cost_scale, name=f"u{i},{j}",
                     attrs={"row": i, "col": j})
            )
    for i in range(n):
        for j in range(n):
            if i + 1 < n:
                dag.add_edge((i, j), (i + 1, j), data=data_scale)
            if j + 1 < n:
                dag.add_edge((i, j), (i, j + 1), data=data_scale)
    return dag
