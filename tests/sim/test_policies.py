"""Rescheduling policies and their registry."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.policies import (
    BoundedPreemptPolicy,
    PendingJob,
    QueuePolicy,
    ReplacePendingPolicy,
    all_policy_names,
    get_policy,
    register_policy,
)


def pj(job_id: str, baseline: float, order: int) -> PendingJob:
    return PendingJob(
        job_id=job_id, template="t", arrival=0.0,
        baseline=baseline, start=1.0, order=order,
    )


ARRIVAL = pj("new", 5.0, 10)
PENDING = [pj("a", 3.0, 0), pj("b", 9.0, 1), pj("c", 7.0, 2), pj("d", 9.0, 3)]


class TestQueue:
    def test_only_places_arrival(self):
        assert QueuePolicy().plan(ARRIVAL, PENDING) == ["new"]

    def test_empty_pending(self):
        assert QueuePolicy().plan(ARRIVAL, []) == ["new"]


class TestReplace:
    def test_sjf_over_everyone(self):
        # Sorted by (baseline, order): a(3) < new(5) < c(7) < b(9) < d(9).
        plan = ReplacePendingPolicy().plan(ARRIVAL, PENDING)
        assert plan == ["a", "new", "c", "b", "d"]

    def test_ties_break_on_order(self):
        plan = ReplacePendingPolicy().plan(pj("x", 9.0, 99), PENDING)
        assert plan.index("b") < plan.index("d") < plan.index("x")


class TestPreempt:
    def test_victims_are_larger_jobs_in_arrival_order(self):
        # Victims: baseline > 5 -> b(9), c(7), d(9); worst-first pick
        # takes b, d, c, then they re-place in original arrival order.
        plan = BoundedPreemptPolicy(max_preempt=4).plan(ARRIVAL, PENDING)
        assert plan == ["new", "b", "c", "d"]

    def test_bound_respected(self):
        plan = BoundedPreemptPolicy(max_preempt=1).plan(ARRIVAL, PENDING)
        assert plan == ["new", "b"]  # single worst victim

    def test_zero_bound_is_fifo(self):
        assert BoundedPreemptPolicy(max_preempt=0).plan(ARRIVAL, PENDING) == ["new"]

    def test_no_smaller_jobs_preempted(self):
        plan = BoundedPreemptPolicy(max_preempt=4).plan(ARRIVAL, PENDING)
        assert "a" not in plan

    def test_negative_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            BoundedPreemptPolicy(max_preempt=-1)


class TestRegistry:
    def test_builtins_registered(self):
        names = all_policy_names()
        assert {"queue", "replace", "preempt", "preempt-1"} <= set(names)
        assert names == sorted(names)

    def test_get_policy_instantiates_fresh(self):
        a = get_policy("queue")
        b = get_policy("queue")
        assert a is not b and a.name == "queue"

    def test_parameterized_registration(self):
        assert get_policy("preempt-1").max_preempt == 1

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_policy("nope")

    def test_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            register_policy("queue", QueuePolicy)

    def test_plan_independent_of_pending_input_order(self):
        # Policies must key on (baseline, order), never on list position.
        import itertools

        for policy_name in ("replace", "preempt"):
            policy = get_policy(policy_name)
            base = policy.plan(ARRIVAL, PENDING)
            for perm in itertools.permutations(PENDING):
                assert policy.plan(ARRIVAL, list(perm)) == base
