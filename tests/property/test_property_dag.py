"""Property-based tests for TaskDAG and its analyses."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.analysis import (
    bottom_levels,
    critical_path,
    critical_path_length,
    graph_levels,
    parallelism_profile,
    top_levels,
)
from repro.dag.graph import TaskDAG
from repro.dag.task import Task


@st.composite
def random_dags(draw) -> TaskDAG:
    """Arbitrary small weighted DAGs: edges always point id-upward, so
    acyclicity holds by construction."""
    n = draw(st.integers(min_value=1, max_value=14))
    dag = TaskDAG("prop")
    costs = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    for i in range(n):
        dag.add_task(Task(i, cost=costs[i]))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(st.lists(st.sampled_from(possible), unique=True, max_size=30)) if possible else []
    for u, v in chosen:
        data = draw(st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
        dag.add_edge(u, v, data=data)
    return dag


@given(random_dags())
@settings(max_examples=150)
def test_topological_order_is_topological(dag):
    order = dag.topological_order()
    assert sorted(order) == sorted(dag.tasks())
    pos = {t: i for i, t in enumerate(order)}
    for u, v in dag.edges():
        assert pos[u] < pos[v]


@given(random_dags())
@settings(max_examples=150)
def test_levels_monotone_along_edges(dag):
    tl = top_levels(dag)
    bl = bottom_levels(dag)
    for u, v in dag.edges():
        assert tl[v] >= tl[u] + dag.cost(u) - 1e-9
        assert bl[u] >= bl[v] + dag.cost(u) - 1e-9 or dag.cost(u) == 0


@given(random_dags())
@settings(max_examples=150)
def test_cp_length_equals_max_blevel_and_tlevel_plus_cost(dag):
    cp = critical_path_length(dag)
    bl = bottom_levels(dag)
    tl = top_levels(dag)
    assert cp == max(bl.values())
    # The tight identity: max over tasks of tlevel + blevel == CP.
    assert abs(max(tl[t] + bl[t] for t in dag.tasks()) - cp) < 1e-6


@given(random_dags())
@settings(max_examples=150)
def test_critical_path_is_consistent(dag):
    path = critical_path(dag)
    assert path[0] in dag.entry_tasks()
    assert path[-1] in dag.exit_tasks()
    for u, v in zip(path, path[1:]):
        assert dag.has_edge(u, v)
    length = sum(dag.cost(t) for t in path) + sum(
        dag.data(u, v) for u, v in zip(path, path[1:])
    )
    assert abs(length - critical_path_length(dag)) < 1e-6


@given(random_dags())
@settings(max_examples=150)
def test_profile_partitions_tasks(dag):
    profile = parallelism_profile(dag)
    assert sum(profile) == dag.num_tasks
    assert all(w >= 1 for w in profile)
    levels = graph_levels(dag)
    assert len(profile) == max(levels.values()) + 1


@given(random_dags())
@settings(max_examples=100)
def test_copy_equivalence(dag):
    clone = dag.copy()
    assert list(clone.tasks()) == list(dag.tasks())
    assert list(clone.edges()) == list(dag.edges())
    assert critical_path_length(clone) == critical_path_length(dag)


@given(random_dags())
@settings(max_examples=100)
def test_json_round_trip_preserves_analysis(dag):
    from repro.dag.io import from_json, to_json

    back = from_json(to_json(dag))
    assert back.num_tasks == dag.num_tasks
    assert abs(critical_path_length(back) - critical_path_length(dag)) < 1e-9
