"""Observability through the service stack.

Covers the three integration claims: a trace id set by the client is
stamped on every span the request produces end-to-end (client ->
server -> engine -> worker), ``GET /metrics`` unifies the engine
counters with the tracer's ``repro_obs_*`` metrics, and a warm cache
hit records a ``cache.hit`` span instead of a compute span.

Engines run with ``workers=0`` (thread execution) so worker spans are
produced in-process; the process-pool path exercises the identical
absorb machinery through ``compute_schedule_payload_traced``'s
picklable export.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.bench import workloads as W
from repro.obs import Tracer, validate_trace
from repro.service.client import ServiceClient
from repro.service.engine import EngineConfig, SchedulingEngine
from repro.service.server import ScheduleServer
from repro.utils.rng import as_generator


def _instance(seed: int = 7, num_tasks: int = 8):
    return W.random_instance(as_generator(seed), num_tasks=num_tasks, num_procs=3)


def _run(coro):
    return asyncio.run(coro)


def _spans_for(tracer: Tracer, trace_id: str) -> list[dict]:
    return [s for s in tracer.spans() if s["attrs"].get("trace_id") == trace_id]


def test_trace_id_propagates_client_to_server_to_worker():
    async def scenario():
        tracer = Tracer(name="svc")
        engine = SchedulingEngine(EngineConfig(workers=0), tracer=tracer)
        server = ScheduleServer(engine, port=0)
        await server.start()
        try:
            client = ServiceClient(port=server.port)
            result = await client.schedule(_instance(), "HEFT", trace_id="ride-42")
            assert result.trace_id == "ride-42"
            assert result.payload["trace_id"] == "ride-42"
            stamped = {s["name"] for s in _spans_for(tracer, "ride-42")}
            # Engine-side request spans...
            assert {"service.request", "cache.lookup", "queue.wait",
                    "service.compute", "service.encode"} <= stamped
            # ...and the worker's own root span, absorbed with the same id.
            assert "worker.compute" in stamped
            all_names = {s["name"] for s in tracer.spans()}
            assert {"worker.parse", "worker.schedule", "worker.validate",
                    "worker.encode", "sched.run"} <= all_names
            assert validate_trace(tracer) == []
        finally:
            await server.stop()

    _run(scenario())


def test_engine_generates_trace_ids_when_client_sends_none():
    async def scenario():
        tracer = Tracer()
        engine = SchedulingEngine(EngineConfig(workers=0), tracer=tracer)
        await engine.start()
        try:
            a = await engine.submit(_instance(1), "HEFT")
            b = await engine.submit(_instance(2), "HEFT")
            assert a["trace_id"] and b["trace_id"]
            assert a["trace_id"] != b["trace_id"]
        finally:
            await engine.stop()

    _run(scenario())


def test_untraced_engine_keeps_payload_shape():
    """With the default no-op tracer nothing changes: no trace_id key,
    no recorded spans."""

    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            payload = await engine.submit(_instance(), "HEFT")
            assert "trace_id" not in payload
        finally:
            await engine.stop()

    _run(scenario())


def test_warm_hit_records_cache_hit_span_instead_of_compute():
    async def scenario():
        tracer = Tracer()
        engine = SchedulingEngine(EngineConfig(workers=0), tracer=tracer)
        await engine.start()
        try:
            inst = _instance()
            cold = await engine.submit(inst, "HEFT", trace_id="cold-1")
            warm = await engine.submit(inst, "HEFT", trace_id="warm-1")
            assert cold["cache_hit"] is False and warm["cache_hit"] is True
            cold_names = {s["name"] for s in _spans_for(tracer, "cold-1")}
            warm_names = {s["name"] for s in _spans_for(tracer, "warm-1")}
            assert "service.compute" in cold_names
            assert "cache.hit" not in cold_names
            assert "cache.hit" in warm_names
            assert "service.compute" not in warm_names
            assert "queue.wait" not in warm_names
            (lookup,) = [s for s in _spans_for(tracer, "warm-1")
                         if s["name"] == "cache.lookup"]
            assert lookup["attrs"]["hit"] is True
        finally:
            await engine.stop()

    _run(scenario())


def test_cached_payloads_stay_request_pure():
    """The cache stores no per-request fields: a warm hit under a new
    trace id answers with its own id, not the cold request's."""

    async def scenario():
        tracer = Tracer()
        engine = SchedulingEngine(EngineConfig(workers=0), tracer=tracer)
        await engine.start()
        try:
            inst = _instance()
            cold = await engine.submit(inst, "HEFT", trace_id="first")
            warm = await engine.submit(inst, "HEFT", trace_id="second")
            assert cold["trace_id"] == "first"
            assert warm["trace_id"] == "second"
            assert warm["makespan"] == cold["makespan"]
            assert warm["placements"] == cold["placements"]
        finally:
            await engine.stop()

    _run(scenario())


def test_metrics_exposition_unifies_service_and_tracer_counters():
    async def scenario():
        tracer = Tracer()
        engine = SchedulingEngine(EngineConfig(workers=0), tracer=tracer)
        server = ScheduleServer(engine, port=0)
        await server.start()
        try:
            client = ServiceClient(port=server.port)
            inst = _instance()
            await client.schedule(inst, "HEFT")
            await client.schedule(inst, "HEFT")  # warm hit
            text = await client.metrics_text()
            lines = dict(
                line.rsplit(" ", 1) for line in text.strip().split("\n")
            )
            # Service metrics are still there...
            assert float(lines["repro_service_requests_total"]) == 2.0
            assert float(lines["repro_service_cache_hits_total"]) == 1.0
            # ...now joined by the tracer's counters on the same page.
            assert float(lines["repro_obs_service_computes_total"]) == 1.0
            assert float(lines["repro_obs_sched_tasks_placed_total"]) == 8.0
        finally:
            await server.stop()

    _run(scenario())


def test_untraced_metrics_page_has_no_obs_section():
    async def scenario():
        engine = SchedulingEngine(EngineConfig(workers=0))
        await engine.start()
        try:
            await engine.submit(_instance(), "HEFT")
            text = engine.render_metrics()
            assert "repro_service_requests_total" in text
            assert "repro_obs_" not in text
        finally:
            await engine.stop()

    _run(scenario())


def test_request_doc_rejects_non_string_trace_id():
    from repro.service.errors import RequestError
    from repro.service.protocol import make_request_doc, parse_request_doc
    import json

    from repro.instance_io import instance_to_json

    inst = _instance()
    doc = make_request_doc(json.loads(instance_to_json(inst)), "HEFT",
                           trace_id="ok-id")
    _, alg, _, trace_id = parse_request_doc(doc)
    assert (alg, trace_id) == ("HEFT", "ok-id")
    doc["trace_id"] = 123
    with pytest.raises(RequestError, match="trace_id"):
        parse_request_doc(doc)
