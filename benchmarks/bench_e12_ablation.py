"""E12 — Ablation of the four improvements.

Expected shape: the full configuration is at least as good as every
single-feature-removed configuration, all improved configurations beat
the bare-HEFT point, and each removal costs measurable quality on at
least one of the ablation axes.
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e12, e12_data
from repro.core import ImprovedConfig, ImprovedScheduler


def test_e12_shape(quick):
    means = e12_data(quick)
    print("\n" + e12(quick))
    full = means["full"]
    base = means["none (=HEFT)"]
    # Every improved configuration beats bare HEFT on average.
    for label, mean in means.items():
        if label != "none (=HEFT)":
            assert mean <= base + 1e-9, label
    # The full configuration is the best or tied-best point.
    assert full <= min(means.values()) + 1e-6
    # Something was actually gained.
    assert full < base - 1e-4


def test_e12_benchmark_full(benchmark):
    rng = np.random.default_rng(212)
    inst = W.random_instance(rng, num_tasks=80)
    scheduler = ImprovedScheduler(ImprovedConfig())
    result = benchmark(scheduler.schedule, inst)
    assert result.makespan > 0


def test_e12_benchmark_baseline_config(benchmark):
    rng = np.random.default_rng(212)
    inst = W.random_instance(rng, num_tasks=80)
    scheduler = ImprovedScheduler(ImprovedConfig.baseline_heft())
    result = benchmark(scheduler.schedule, inst)
    assert result.makespan > 0
