"""The :class:`Processor` record of a machine model."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import MachineError
from repro.types import ProcId


@dataclass(frozen=True)
class Processor:
    """One processing element of the target system.

    Parameters
    ----------
    id:
        Hashable identifier, unique within a machine.  Built-in machine
        builders use consecutive integers starting at 0.
    speed:
        Relative speed factor (> 0).  A task with nominal cost ``c`` takes
        ``c / speed`` time units on this processor when the ETC matrix is
        derived from speeds (the *consistent* heterogeneity model).
        Explicitly generated ETC matrices override this.
    name:
        Optional human-readable label.
    """

    id: ProcId
    speed: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        speed = float(self.speed)
        if math.isnan(speed) or math.isinf(speed) or speed <= 0:
            raise MachineError(
                f"processor {self.id!r}: speed must be finite and > 0, got {self.speed!r}"
            )
        object.__setattr__(self, "speed", speed)
        if not self.name:
            object.__setattr__(self, "name", f"P{self.id}")

    def exec_time(self, cost: float) -> float:
        """Execution time of a task with nominal ``cost`` on this processor."""
        return cost / self.speed
