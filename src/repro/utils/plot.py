"""ASCII line plots for terminal-rendered figures.

The experiment reports are series tables; :func:`ascii_plot` adds a
rough visual of the same series so a reader can see crossovers without
leaving the terminal.  Purely cosmetic — all assertions run against the
numeric tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Glyphs assigned to series in order.
_GLYPHS = "*o+x#@%&"


def ascii_plot(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
) -> str:
    """Render series as a crude ASCII scatter/line chart.

    Each series gets a glyph; a legend follows the chart.  Values are
    min-max normalised over all series together so relative positions
    are faithful.
    """
    if width < 8 or height < 4:
        raise ValueError("plot must be at least 8x4")
    for name, vals in series.items():
        if len(vals) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    all_vals = [v for vals in series.values() for v in vals]
    if not all_vals or len(x_values) < 2:
        return (title + "\n" if title else "") + "(not enough data to plot)"

    lo, hi = min(all_vals), max(all_vals)
    span = hi - lo if hi > lo else 1.0
    x_lo, x_hi = min(x_values), max(x_values)
    x_span = x_hi - x_lo if x_hi > x_lo else 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, (name, vals) in enumerate(series.items()):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        for x, v in zip(x_values, vals):
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((v - lo) / span * (height - 1))
            grid[height - 1 - row][col] = glyph

    out = []
    if title:
        out.append(title)
    out.append(f"{hi:>10.4g} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        out.append(" " * 10 + " │" + "".join(row))
    out.append(f"{lo:>10.4g} ┤" + "".join(grid[-1]))
    out.append(" " * 12 + f"{x_lo:<10.4g}" + " " * max(0, width - 20) + f"{x_hi:>10.4g}")
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}" for i, name in enumerate(series)
    )
    out.append("legend: " + legend)
    return "\n".join(out)
