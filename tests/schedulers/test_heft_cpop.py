"""Tests for HEFT and CPOP against the published reference schedule."""

import pytest

from repro.instance import homogeneous_instance, make_instance
from repro.dag.generators import random_dag
from repro.schedule.validation import validate
from repro.schedulers.cpop import CPOP
from repro.schedulers.heft import HEFT


class TestHeftReference:
    def test_published_makespan(self, topcuoglu_instance):
        schedule = HEFT().schedule(topcuoglu_instance)
        validate(schedule, topcuoglu_instance)
        assert schedule.makespan == pytest.approx(80.0)

    def test_priority_order_published(self, topcuoglu_instance):
        # Decreasing rank_u: 1, 3/4 (tie 80), 2, 5, 6, 9, 7, 8, 10.
        order = HEFT().priority_order(topcuoglu_instance)
        assert order[0] == 1
        assert set(order[1:3]) == {3, 4}
        assert order[3] == 2
        assert order[-1] == 10

    def test_first_task_on_fastest_processor(self, topcuoglu_instance):
        schedule = HEFT().schedule(topcuoglu_instance)
        # Task 1's ETC row is (14, 16, 9): P2 wins.
        assert schedule.proc_of(1) == 2

    def test_deterministic(self, topcuoglu_instance):
        a = HEFT().schedule(topcuoglu_instance)
        b = HEFT().schedule(topcuoglu_instance)
        assert a.assignment() == b.assignment()
        assert a.makespan == b.makespan


class TestCpopReference:
    def test_published_makespan(self, topcuoglu_instance):
        schedule = CPOP().schedule(topcuoglu_instance)
        validate(schedule, topcuoglu_instance)
        assert schedule.makespan == pytest.approx(86.0)

    def test_cp_tasks_colocated(self, topcuoglu_instance):
        schedule = CPOP().schedule(topcuoglu_instance)
        procs = {schedule.proc_of(t) for t in (1, 2, 9, 10)}
        assert len(procs) == 1

    def test_cp_processor_minimises_path_time(self, topcuoglu_instance):
        schedule = CPOP().schedule(topcuoglu_instance)
        cp_proc = schedule.proc_of(1)
        inst = topcuoglu_instance
        totals = {
            p: sum(inst.exec_time(t, p) for t in (1, 2, 9, 10))
            for p in inst.machine.proc_ids()
        }
        assert totals[cp_proc] == min(totals.values())


class TestVariantsAndEdgeCases:
    @pytest.mark.parametrize("agg", ["mean", "median", "best", "worst"])
    def test_rank_variants_feasible(self, topcuoglu_instance, agg):
        schedule = HEFT(agg=agg).schedule(topcuoglu_instance)
        validate(schedule, topcuoglu_instance)

    def test_no_insertion_variant(self, topcuoglu_instance):
        ins = HEFT(insertion=True).schedule(topcuoglu_instance)
        noins = HEFT(insertion=False).schedule(topcuoglu_instance)
        validate(noins, topcuoglu_instance)
        assert ins.makespan <= noins.makespan + 1e-9

    def test_single_task(self):
        from repro.dag.graph import TaskDAG
        from repro.dag.task import Task

        dag = TaskDAG()
        dag.add_task(Task("only", cost=5.0))
        inst = homogeneous_instance(dag, num_procs=3)
        for alg in (HEFT(), CPOP()):
            s = alg.schedule(inst)
            validate(s, inst)
            assert s.makespan == pytest.approx(5.0)

    def test_single_processor(self):
        dag = random_dag(30, seed=1)
        inst = make_instance(dag, num_procs=1, seed=1)
        for alg in (HEFT(), CPOP()):
            s = alg.schedule(inst)
            validate(s, inst)
            # One processor: makespan >= total of that column.
            total = sum(inst.exec_time(t, 0) for t in dag.tasks())
            assert s.makespan == pytest.approx(total)

    def test_disconnected_components(self):
        from repro.dag.graph import TaskDAG

        dag = TaskDAG.from_edges([("a", "b"), ("x", "y")],
                                 costs={"a": 1, "b": 2, "x": 3, "y": 4})
        inst = homogeneous_instance(dag, num_procs=2)
        for alg in (HEFT(), CPOP()):
            s = alg.schedule(inst)
            validate(s, inst)

    def test_names(self):
        assert HEFT().name == "HEFT"
        assert HEFT(agg="worst").name == "HEFT-worst"
        assert HEFT(insertion=False).name == "HEFT-noins"
        assert CPOP().name == "CPOP"
