"""The kill-k differential suite — the PR's defining deliverable.

For every corpus instance, every resilient scheduler and every kill set
of ``k`` processors, the analytic degraded-timeline prediction
(:func:`repro.schedulers.resilient.predict_degraded`) and the
discrete-event simulator (:func:`repro.sim.executor.execute`) must agree
**bit-for-bit**, every task must still complete, and deadlines (on the
deadline-annotated corpus) must behave exactly as the schedulability
verdict promised.
"""

from __future__ import annotations

import json
from itertools import combinations

import pytest

from repro.schedulers.registry import get_scheduler
from repro.schedulers.resilient import (
    ResilientScheduler,
    predict_degraded,
    schedulability_report,
)
from repro.service.protocol import schedule_payload
from repro.sim.executor import execute
from tests.population import build_deadline_population, build_population

CORPUS = build_population()
RESILIENT = [("FT-HEFT-k1", 1), ("FT-HEFT-k2", 2), ("FT-IMP-k1", 1), ("FT-IMP-k2", 2)]


def _assert_agreement(label, alg, inst, sched, faults):
    pred = predict_degraded(sched, inst, faults)
    real = execute(sched, inst, faults=faults)
    ctx = (label, alg, faults)
    assert pred.makespan == real.makespan, ctx
    assert pred.task_ends == real.task_ends(), ctx
    assert pred.completed_copies == len(real.copies), ctx
    assert pred.aborted_copies == len(real.aborted), ctx
    assert pred.unstarted_copies == len(real.unstarted), ctx
    return pred, real


@pytest.mark.parametrize("alg,k", RESILIENT)
def test_every_kill_set_completes_and_matches_prediction(alg, k):
    """All corpus instances, all size-k kill sets at time zero: realised
    == predicted and every task completes."""
    for label, inst in CORPUS:
        sched = get_scheduler(alg).schedule(inst)
        keff = min(k, inst.num_procs - 1)
        for kill in combinations(inst.machine.proc_ids(), keff):
            faults = {p: 0.0 for p in kill}
            _, real = _assert_agreement(label, alg, inst, sched, faults)
            assert real.all_tasks_completed(inst), (label, alg, kill)


@pytest.mark.parametrize("alg,k", [("FT-HEFT-k1", 1), ("FT-IMP-k2", 2)])
def test_mid_simulation_kills_match_prediction(alg, k):
    """Kills landing mid-run (aborting in-flight work) and staggered
    per-processor kill times agree bit-for-bit too."""
    for label, inst in CORPUS[::5]:
        sched = get_scheduler(alg).schedule(inst)
        keff = min(k, inst.num_procs - 1)
        procs = inst.machine.proc_ids()
        span = sched.makespan
        for kill in list(combinations(procs, keff))[:6]:
            for frac in (0.25, 0.6):
                faults = {p: frac * span for p in kill}
                _, real = _assert_agreement(label, alg, inst, sched, faults)
                assert real.all_tasks_completed(inst), (label, alg, kill, frac)
            staggered = {
                p: (0.1 + 0.3 * i) * span for i, p in enumerate(kill)
            }
            _, real = _assert_agreement(label, alg, inst, sched, staggered)
            assert real.all_tasks_completed(inst), (label, alg, staggered)


@pytest.mark.parametrize("base", ["HEFT", "IMP"])
def test_k0_bit_identical_to_base_over_corpus(base):
    """k = 0 is a true passthrough: the full serialized payload equals
    the base scheduler's on every corpus instance."""
    for label, inst in CORPUS:
        ft = ResilientScheduler(base, k=0).schedule(inst)
        ref = get_scheduler(base).schedule(inst)
        a = json.dumps(schedule_payload(ft, inst, base), sort_keys=True)
        b = json.dumps(schedule_payload(ref, inst, base), sort_keys=True)
        assert a == b, (label, base)


def test_deadline_corpus_verdicts_hold_under_faults():
    """On the deadline-annotated corpus the schedulability verdict is
    exact: schedulable reports survive every kill set within budget, and
    unschedulable reports come with a witness that really violates."""
    for label, inst in build_deadline_population():
        sched = get_scheduler("FT-HEFT-k1").schedule(inst)
        report = schedulability_report(sched, inst, k=1)
        if report.schedulable:
            for kill in combinations(inst.machine.proc_ids(), 1):
                real = execute(sched, inst, faults={p: 0.0 for p in kill})
                assert real.all_tasks_completed(inst), (label, kill)
                assert all(
                    end <= inst.deadline for end in real.task_ends().values()
                ), (label, kill)
        else:
            assert report.witness is not None, label
            real = execute(sched, inst, faults={p: 0.0 for p in report.witness})
            violated = not real.all_tasks_completed(inst) or any(
                end > inst.deadline for end in real.task_ends().values()
            )
            assert violated, (label, report.witness)


def test_infeasible_deadlines_are_never_schedulable():
    for label, inst in build_deadline_population():
        if not label.endswith("infeasible"):
            continue
        sched = get_scheduler("FT-HEFT-k1").schedule(inst)
        report = schedulability_report(sched, inst, k=1)
        assert not report.schedulable, label
