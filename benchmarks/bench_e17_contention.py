"""E17 (extension) — link-contention error vs CCR.

Every static scheduler here plans against the literature's
contention-free network model.  Replaying schedules with per-link FIFO
contention quantifies that assumption's error.  Expected shape: the
error ratio is ~1.0 at low CCR and inflates with CCR for every
algorithm; schedules that pack communication densely (IMP at high CCR)
suffer at least as much as sparser ones — a measured limitation worth
reporting, not hiding.
"""

import numpy as np

from repro.bench import workloads as W
from repro.bench.registry import e17, e17_data
from repro.schedulers.registry import get_scheduler
from repro.sim import execute


def test_e17_shape(quick):
    ccrs, series = e17_data(quick)
    print("\n" + e17(quick))
    for name, vals in series.items():
        # Contention can only delay.
        assert all(v >= 1.0 - 1e-9 for v in vals), name
        # Error grows with CCR.
        assert vals[-1] > vals[0], name
    # At the lowest CCR the contention-free model is nearly exact.
    assert all(series[name][0] < 1.2 for name in series)


def test_e17_benchmark_contention_sim(benchmark):
    rng = np.random.default_rng(217)
    inst = W.random_instance(rng, num_tasks=60, ccr=5.0)
    schedule = get_scheduler("HEFT").schedule(inst)
    result = benchmark(execute, schedule, inst, None, True)
    assert result.makespan >= schedule.makespan - 1e-9
