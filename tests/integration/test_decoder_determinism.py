"""Decoder determinism across process restarts and decode paths.

The decode order, tie-breaking and makespans must not depend on Python's
per-process hash randomisation (``PYTHONHASHSEED``) — id ordering comes
from insertion/topological order everywhere, never from set/dict
iteration over hashed ids — nor on which decode path (compiled
flat-array vs object) evaluates the assignment.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.kernels import use_kernels
from repro.schedulers.meta import GeneticScheduler, SimulatedAnnealingScheduler
from repro.schedulers.meta.decoder import compiled_decoder, decode_assignment, rank_order

ROOT = Path(__file__).resolve().parent.parent.parent

#: Runs in a fresh interpreter per PYTHONHASHSEED; prints one canonical
#: report line covering decode order, object/compiled decode results and
#: the full metaheuristic search trajectories.
_PROBE = """
import numpy as np
from repro.bench import workloads as W
from repro.schedulers.meta import GeneticScheduler, SimulatedAnnealingScheduler
from repro.schedulers.meta.decoder import compiled_decoder, decode_assignment, rank_order

inst = W.random_instance(np.random.default_rng(77), num_tasks=24, num_procs=5)
order = rank_order(inst)
compiled = compiled_decoder(inst)
genome = np.random.default_rng(3).integers(0, inst.num_procs, size=inst.num_tasks)
span, starts, procs = compiled.decode_fast(genome)
sched = decode_assignment(inst, compiled.assignment_of(genome), order)
ga = GeneticScheduler(population=8, generations=4, seed=1).schedule(inst)
sa = SimulatedAnnealingScheduler(iterations=80, seed=1).schedule(inst)
print(repr((
    [str(t) for t in order],
    span.hex(),
    sched.makespan.hex(),
    [s.hex() for s in starts.tolist()],
    procs.tolist(),
    ga.makespan.hex(),
    sa.makespan.hex(),
)))
"""


def _run_probe(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        cwd=ROOT,
    )
    return out.stdout.strip()


def test_identical_across_hashseed_restarts():
    reports = {seed: _run_probe(seed) for seed in ("0", "1", "4242")}
    assert reports["0"] == reports["1"] == reports["4242"], reports


def test_identical_tie_breaking_across_decode_paths():
    """Same instance, same assignment: compiled and object paths pick the
    same processors and start times even when finish-time ties exist
    (a homogeneous machine maximises tie opportunities)."""
    from repro.bench import workloads as W

    inst = W.homogeneous_random_instance(np.random.default_rng(11), num_tasks=20, num_procs=4)
    compiled = compiled_decoder(inst)
    order = rank_order(inst)
    rng = np.random.default_rng(5)
    for _ in range(10):
        genome = rng.integers(0, inst.num_procs, size=inst.num_tasks)
        span, starts, procs = compiled.decode_fast(genome)
        schedule = decode_assignment(inst, compiled.assignment_of(genome), order)
        with use_kernels(False):
            legacy = decode_assignment(inst, compiled.assignment_of(genome), list(order))
        assert span == schedule.makespan == legacy.makespan
        for i, task in enumerate(compiled.tasks):
            assert schedule.entry(task).start == legacy.entry(task).start == starts[i]
            assert schedule.entry(task).proc == legacy.entry(task).proc == compiled.procs[procs[i]]


def test_meta_schedulers_deterministic_within_process():
    from repro.bench import workloads as W

    inst = W.random_instance(np.random.default_rng(13), num_tasks=18, num_procs=4)
    for make in (
        lambda: GeneticScheduler(population=8, generations=4, seed=9),
        lambda: SimulatedAnnealingScheduler(iterations=60, seed=9),
    ):
        a = make().schedule(inst)
        b = make().schedule(inst)
        assert a.makespan == b.makespan
        assert {t: a.entry(t).start for t in a.tasks()} == {
            t: b.entry(t).start for t in b.tasks()
        }
