"""HEFT — Heterogeneous Earliest Finish Time (Topcuoglu et al., 2002).

The reference baseline of the genre and the algorithm the target paper
improves on: tasks are prioritised by decreasing upward rank and placed
on the processor giving the earliest (insertion-based) finish time.
"""

from __future__ import annotations

from repro.instance import Instance
from repro.kernels import kernels_enabled
from repro.obs import get_tracer
from repro.schedulers.base import ListScheduler
from repro.schedulers.ranking import RankAggregation, upward_ranks
from repro.types import TaskId


class HEFT(ListScheduler):
    """Classic HEFT with insertion-based earliest-finish placement.

    Parameters
    ----------
    agg:
        How heterogeneous execution times are averaged in the upward
        rank.  ``"mean"`` is the published algorithm; other values give
        the well-known rank variants.
    insertion:
        Keep the published idle-gap insertion (default) or disable it.
    """

    compiled_policy = "eft"

    def __init__(self, agg: RankAggregation = "mean", insertion: bool = True) -> None:
        self.agg = agg
        self.insertion = insertion
        suffix = "" if agg == "mean" else f"-{agg}"
        self.name = f"HEFT{suffix}" if insertion else f"HEFT{suffix}-noins"

    def priority_order(self, instance: Instance) -> list[TaskId]:
        with get_tracer().span("heft.rank_u", agg=self.agg):
            ranks = upward_ranks(instance, self.agg)
        if kernels_enabled():
            pos = instance.kernel.pos
        else:
            pos = {t: i for i, t in enumerate(instance.dag.topological_order())}
        # Decreasing upward rank is a valid topological order because a
        # parent's rank strictly exceeds each child's (w > 0); the
        # topological position tie-break also keeps zero-cost chains legal.
        return sorted(instance.dag.tasks(), key=lambda t: (-ranks[t], pos[t]))
