"""Compiled cold-path benchmark: flat-array executor vs object path.

Two measurements, both against the object decode path with the kernel
layer left ON (``repro.compiled.use_executor(False)``) — i.e. the
speedup attributable to the compiled executor alone, not to the rank
kernels:

* **bit-identity** — every routed scheduler over the full 56-instance
  differential corpus (all four rank aggregations via the HEFT variants
  and the IMP rank search, insertion on and off, duplication/lookahead/
  refinement on), comparing complete serialized payloads;
* **end-to-end speedup** — HEFT and IMP on 100/200/300-task instances,
  min-of-reps wall time, geometric mean across all (alg, size) points.

Writes ``BENCH_coldpath.json`` at the repo root.  Run directly to
regenerate:

    PYTHONPATH=src python benchmarks/bench_coldpath.py

The pytest wrapper is the PR's acceptance gate: zero corpus mismatches
and a >= 3x geomean cold-path speedup.
"""

from __future__ import annotations

import json
import math
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT) not in sys.path:
    # The differential corpus lives in the tests package; direct
    # ``python benchmarks/bench_coldpath.py`` runs need the repo root.
    sys.path.insert(0, str(ROOT))

from repro.bench import workloads as W
from repro.compiled import use_executor
from repro.core import ImprovedConfig, ImprovedScheduler
from repro.schedulers.registry import get_scheduler
from repro.service.protocol import schedule_payload
from repro.utils.rng import as_generator
from tests.population import build_population

OUT = ROOT / "BENCH_coldpath.json"

#: Schedulers routed through the compiled executor; the HEFT variants
#: cover all four rank aggregations.
ROUTED = ["HEFT", "HEFT-median", "HEFT-best", "HEFT-worst",
          "CPOP", "HCPT", "PETS", "DLS", "HLFET", "MCP", "IMP"]

#: Timed end-to-end points (scheduler, task count, timing repetitions).
POINTS = [(alg, n, 5 if alg == "HEFT" else 3)
          for n in (100, 200, 300) for alg in ("HEFT", "IMP")]


def _payload(schedule, instance, alg) -> str:
    return json.dumps(schedule_payload(schedule, instance, alg), sort_keys=True)


def check_corpus_identity() -> dict:
    """Compiled vs object payloads over the full differential corpus."""
    population = build_population()
    checked = 0
    mismatches: list[str] = []
    insertion_off = ImprovedConfig(insertion=False)
    for label, inst in population:
        for alg in ROUTED:
            scheduler = get_scheduler(alg)
            fast = scheduler.schedule(inst)
            with use_executor(False):
                ref = scheduler.schedule(inst)
            checked += 1
            if _payload(fast, inst, alg) != _payload(ref, inst, alg):
                mismatches.append(f"{label}/{alg}")
        fast = ImprovedScheduler(insertion_off).schedule(inst)
        with use_executor(False):
            ref = ImprovedScheduler(insertion_off).schedule(inst)
        checked += 1
        if _payload(fast, inst, "IMP") != _payload(ref, inst, "IMP"):
            mismatches.append(f"{label}/IMP-noinsert")
    return {
        "instances": len(population),
        "schedules_checked": checked,
        "mismatches": mismatches,
    }


def measure_speedups() -> dict:
    """Min-of-reps wall time, compiled vs object path, per (alg, n)."""
    results = []
    for alg, n, reps in POINTS:
        inst = W.random_instance(as_generator(n), num_tasks=n, num_procs=8)
        scheduler = get_scheduler(alg)
        scheduler.schedule(inst)  # warm the kernel/lowering caches
        compiled_times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            fast = scheduler.schedule(inst)
            compiled_times.append(time.perf_counter() - t0)
        with use_executor(False):
            scheduler.schedule(inst)
            object_times = []
            for _ in range(reps):
                t0 = time.perf_counter()
                ref = scheduler.schedule(inst)
                object_times.append(time.perf_counter() - t0)
        assert _payload(fast, inst, alg) == _payload(ref, inst, alg), (alg, n)
        t_fast, t_ref = min(compiled_times), min(object_times)
        results.append({
            "alg": alg,
            "num_tasks": n,
            "object_ms": t_ref * 1e3,
            "compiled_ms": t_fast * 1e3,
            "speedup": t_ref / t_fast,
        })
    geomean = math.exp(
        sum(math.log(r["speedup"]) for r in results) / len(results)
    )
    return {"points": results, "geomean_speedup": geomean}


def run_coldpath() -> dict:
    return {
        "identity": check_corpus_identity(),
        "timing": measure_speedups(),
    }


def test_coldpath_gate():
    """Acceptance gate: bit-identity is hard; the speedup floor is the
    PR's >= 3x geomean target (min-of-reps absorbs shared-CI jitter)."""
    report = run_coldpath()
    assert report["identity"]["mismatches"] == [], report["identity"]
    assert report["timing"]["geomean_speedup"] >= 3.0, report["timing"]


def main() -> None:
    report = run_coldpath()
    OUT.write_text(json.dumps(report, indent=2) + "\n")
    ident = report["identity"]
    print(f"corpus identity  : {ident['schedules_checked']} schedules over "
          f"{ident['instances']} instances, {len(ident['mismatches'])} mismatches")
    for r in report["timing"]["points"]:
        print(f"{r['alg']:5s} n={r['num_tasks']:3d} : object {r['object_ms']:8.2f}ms "
              f"compiled {r['compiled_ms']:7.2f}ms  {r['speedup']:5.2f}x")
    print(f"geomean speedup  : {report['timing']['geomean_speedup']:.2f}x")
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
