"""Interconnect topology builders.

Each builder returns a :class:`~repro.machine.cluster.Machine` whose
communication model encodes the *effective* per-pair cost of the
topology: a route of ``h`` hops with per-hop latency ``L`` and per-link
bandwidth ``B`` costs ``h*L + data/B`` (store-and-forward latency, but a
single bandwidth term — the standard contention-free approximation used
by the static-scheduling literature).
"""

from __future__ import annotations

import math
from typing import Sequence

import networkx as nx

from repro.exceptions import MachineError
from repro.machine.cluster import Machine
from repro.machine.comm import LinkCommunication, UniformCommunication
from repro.machine.processor import Processor


def _speeds(num_procs: int, speeds: Sequence[float] | None) -> list[float]:
    if speeds is None:
        return [1.0] * num_procs
    speeds = list(speeds)
    if len(speeds) != num_procs:
        raise MachineError(f"expected {num_procs} speeds, got {len(speeds)}")
    return speeds


def _machine_from_link_graph(
    g: nx.Graph,
    speeds: Sequence[float],
    latency: float,
    bandwidth: float,
    name: str,
) -> Machine:
    """Build a machine from an undirected link graph via hop counts."""
    procs = [Processor(id=i, speed=s) for i, s in enumerate(speeds)]
    hops = dict(nx.all_pairs_shortest_path_length(g))
    ids = [p.id for p in procs]
    lat: dict[int, dict[int, float]] = {}
    bw: dict[int, dict[int, float]] = {}
    for src in ids:
        lat[src] = {}
        bw[src] = {}
        for dst in ids:
            if src == dst:
                continue
            try:
                h = hops[src][dst]
            except KeyError:
                raise MachineError(f"topology is disconnected: no route {src} -> {dst}") from None
            lat[src][dst] = latency * h
            bw[src][dst] = bandwidth
    return Machine(procs, LinkCommunication(ids, lat, bw), name=name)


def fully_connected_machine(
    num_procs: int,
    speeds: Sequence[float] | None = None,
    latency: float = 0.0,
    bandwidth: float = 1.0,
) -> Machine:
    """Complete graph: every pair linked directly (the HEFT-paper model)."""
    return Machine(
        [Processor(id=i, speed=s) for i, s in enumerate(_speeds(num_procs, speeds))],
        UniformCommunication(latency, bandwidth),
        name=f"complete-{num_procs}",
    )


def bus_machine(
    num_procs: int,
    speeds: Sequence[float] | None = None,
    latency: float = 0.0,
    bandwidth: float = 1.0,
) -> Machine:
    """Single shared bus: every pair one hop apart at the bus bandwidth.

    Contention on the bus is not modelled analytically (matching the
    literature's contention-free assumption); the discrete-event simulator
    can replay schedules with serialised transfers to quantify the error.
    """
    return Machine(
        [Processor(id=i, speed=s) for i, s in enumerate(_speeds(num_procs, speeds))],
        UniformCommunication(latency, bandwidth),
        name=f"bus-{num_procs}",
    )


def star_machine(
    num_procs: int,
    speeds: Sequence[float] | None = None,
    latency: float = 0.0,
    bandwidth: float = 1.0,
) -> Machine:
    """Star: processor 0 is the hub; leaf-to-leaf routes take two hops."""
    if num_procs < 1:
        raise MachineError("num_procs must be >= 1")
    g = nx.star_graph(num_procs - 1)  # node 0 is the hub
    return _machine_from_link_graph(
        g, _speeds(num_procs, speeds), latency, bandwidth, name=f"star-{num_procs}"
    )


def ring_machine(
    num_procs: int,
    speeds: Sequence[float] | None = None,
    latency: float = 0.0,
    bandwidth: float = 1.0,
) -> Machine:
    """Bidirectional ring; route length is the shorter arc."""
    if num_procs < 1:
        raise MachineError("num_procs must be >= 1")
    if num_procs <= 2:
        g = nx.path_graph(num_procs)
    else:
        g = nx.cycle_graph(num_procs)
    return _machine_from_link_graph(
        g, _speeds(num_procs, speeds), latency, bandwidth, name=f"ring-{num_procs}"
    )


def mesh_machine(
    rows: int,
    cols: int,
    speeds: Sequence[float] | None = None,
    latency: float = 0.0,
    bandwidth: float = 1.0,
) -> Machine:
    """2-D mesh with XY (Manhattan) routing; ids are row-major integers."""
    if rows < 1 or cols < 1:
        raise MachineError("mesh dimensions must be >= 1")
    grid = nx.grid_2d_graph(rows, cols)
    relabel = {(r, c): r * cols + c for r, c in grid.nodes}
    g = nx.relabel_nodes(grid, relabel)
    return _machine_from_link_graph(
        g, _speeds(rows * cols, speeds), latency, bandwidth, name=f"mesh-{rows}x{cols}"
    )
