"""Online-scheduling benchmark: cached dirty-suffix lowering vs full
per-arrival re-lowering, plus the arrival stream against the fleet.

Two measurements:

* **cached vs full re-lowering** — the same 1k-job Poisson trace driven
  through ``simulate_online`` twice: ``relower="cached"`` lowers each
  template once (flat CSR/ETC arrays + rank order) and re-seeds only
  the cluster's dirty-suffix timelines per arrival, while
  ``relower="full"`` rebuilds a fresh Instance (kernel, compiled
  arrays, priority order) for every placement.  Both produce
  byte-identical result payloads — the identity check runs first — so
  the wall-time ratio is pure lowering overhead.  The arrival rate
  keeps the cluster in steady state (util well below saturation): in
  overload the ever-growing timeline scan dominates both paths and the
  ratio approaches 1, which would measure queueing, not lowering.
* **fleet replay** — the same arriving jobs submitted in arrival order
  through the sharded fleet router.  The catalogue has 4 templates, so
  after one cold computation per template every request is a warm
  content-addressed cache hit on its owning shard: the serving-side
  counterpart of the cached-lowering story.

Writes ``BENCH_online.json`` at the repo root.  Run directly to
regenerate:

    PYTHONPATH=src python benchmarks/bench_online.py

The pytest wrappers are the PR's acceptance gates: byte-identical
payloads and a >= 2x cached-lowering speedup on the 1k-job trace, and
a warm fleet replay of the stream.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

from repro.service import ServiceClient
from repro.service.fleet import FleetManager
from repro.sim import PoissonArrivals, build_templates, simulate_online

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_online.json"

#: Catalogue + stream protocol.  rate=0.03 jobs/unit over 4 templates
#: averaging ~200 work units on 8 processors keeps utilization around
#: 0.6-0.8 — loaded enough that timelines carry residual work, stable
#: enough that the dirty suffix stays bounded.
PROTOCOL = dict(num_templates=4, num_tasks=24, num_procs=8,
                template_seed=3, rate=0.03, jobs=1000, stream_seed=42)


def _workload(jobs: int):
    templates = build_templates(
        num_templates=PROTOCOL["num_templates"],
        num_tasks=PROTOCOL["num_tasks"],
        num_procs=PROTOCOL["num_procs"],
        seed=PROTOCOL["template_seed"],
    )
    stream = PoissonArrivals(
        rate=PROTOCOL["rate"], jobs=jobs, seed=PROTOCOL["stream_seed"]
    ).realize(sorted(templates))
    return templates, stream


def measure_relowering(jobs: int, reps: int = 3) -> dict:
    """Cached vs full re-lowering on the same trace; identity + timing."""
    templates, stream = _workload(jobs)
    cached = simulate_online(templates, stream, relower="cached")
    full = simulate_online(templates, stream, relower="full")
    identical = cached.payload_json() == full.payload_json()

    def best_of(relower: str) -> float:
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            simulate_online(templates, stream, relower=relower)
            best = min(best, time.perf_counter() - t0)
        return best

    t_cached = best_of("cached")
    t_full = best_of("full")
    m = cached.metrics_dict()
    return {
        "jobs": jobs,
        "identical_payloads": identical,
        "cached_s": t_cached,
        "full_s": t_full,
        "speedup": t_full / t_cached,
        "utilization": m["utilization"],
        "slowdown_mean": m["slowdown_mean"],
        "response_p99": m["response_p99"],
        "peak_live_intervals": cached.peak_live_intervals,
        "compacted_intervals": cached.compacted,
    }


def measure_policies(jobs: int) -> dict:
    """Metric comparison of the rescheduling policies on one trace."""
    templates, stream = _workload(jobs)
    rows = {}
    for policy in ("queue", "replace", "preempt"):
        res = simulate_online(templates, stream, policy=policy)
        m = res.metrics_dict()
        rows[policy] = {
            "slowdown_mean": m["slowdown_mean"],
            "slowdown_p99": m["slowdown_p99"],
            "response_p99": m["response_p99"],
            "makespan": m["makespan"],
            "replans": res.replans,
        }
    return rows


async def _fleet_replay(jobs: int, shards: int) -> dict:
    """Submit every arriving job's template through the fleet router in
    arrival order; repeats hit the content-addressed schedule cache."""
    templates, stream = _workload(jobs)
    manager = FleetManager(shards=shards, workers=0, health_interval=0.0)
    await manager.start()
    try:
        client = ServiceClient.at(manager.endpoint, request_timeout=300.0)
        hits = 0
        t0 = time.perf_counter()
        for arrival in stream:
            result = await client.schedule(templates[arrival.template], alg="HEFT")
            hits += bool(result.cache_hit)
        elapsed = time.perf_counter() - t0
        await client.close()
        return {
            "jobs": len(stream),
            "shards": shards,
            "elapsed_s": elapsed,
            "throughput_rps": len(stream) / elapsed,
            "hit_rate": hits / len(stream),
            "router": manager.router.stats.as_dict(),
        }
    finally:
        await manager.stop()


def generate(jobs: int | None = None, fleet_jobs: int | None = None) -> dict:
    jobs = PROTOCOL["jobs"] if jobs is None else jobs
    fleet_jobs = jobs if fleet_jobs is None else fleet_jobs
    doc = {
        "benchmark": "online",
        "protocol": dict(PROTOCOL, jobs=jobs, fleet_jobs=fleet_jobs),
        "results": {
            "relowering": measure_relowering(jobs),
            "policies": measure_policies(jobs),
            "fleet": asyncio.run(_fleet_replay(fleet_jobs, shards=3)),
        },
    }
    OUT.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


# ----------------------------------------------------------------------
# pytest wrappers (CI gates)
# ----------------------------------------------------------------------
def test_online_cached_lowering_speedup_floor():
    row = measure_relowering(jobs=1000, reps=2)
    assert row["identical_payloads"], (
        "cached and full re-lowering must produce byte-identical payloads"
    )
    assert row["speedup"] >= 2.0, (
        f"cached lowering only {row['speedup']:.2f}x over full per-arrival "
        f"re-lowering on a 1k-job trace (floor 2.0x): "
        f"{row['cached_s']:.2f}s vs {row['full_s']:.2f}s"
    )
    assert row["utilization"] < 0.9, (
        f"protocol drifted into overload (util {row['utilization']:.2f}); "
        f"the measurement would no longer isolate lowering cost"
    )


def test_online_fleet_replay_warm():
    row = asyncio.run(_fleet_replay(jobs=120, shards=3))
    # 4 unique templates -> at most 4 cold computations, rest warm.
    assert row["hit_rate"] >= (row["jobs"] - 4) / row["jobs"], (
        f"fleet replay should be warm after one computation per template, "
        f"hit rate {row['hit_rate']:.3f}"
    )


if __name__ == "__main__":
    doc = generate()
    rel = doc["results"]["relowering"]
    print(f"relowering : cached {rel['cached_s']:.2f}s  full {rel['full_s']:.2f}s  "
          f"speedup {rel['speedup']:.2f}x  identical={rel['identical_payloads']}")
    for policy, row in doc["results"]["policies"].items():
        print(f"policy {policy:8s}: slowdown_mean={row['slowdown_mean']:.3f}  "
              f"p99={row['slowdown_p99']:.3f}  replans={row['replans']}")
    fleet = doc["results"]["fleet"]
    print(f"fleet      : {fleet['jobs']} jobs via {fleet['shards']} shards  "
          f"{fleet['throughput_rps']:.0f} req/s  hit rate {fleet['hit_rate']:.3f}")
    print(f"wrote {OUT}")
