"""Tests for repro.dag.io (STG / JSON / DOT)."""

import pytest

from repro.dag import io as dio
from repro.dag.graph import TaskDAG
from repro.dag.task import Task
from repro.exceptions import ParseError


@pytest.fixture
def int_dag() -> TaskDAG:
    d = TaskDAG("io-test")
    for i, c in ((0, 0.0), (1, 3.0), (2, 4.0), (3, 0.0)):
        d.add_task(Task(i, cost=c))
    d.add_edge(0, 1, data=0.0)
    d.add_edge(0, 2, data=0.0)
    d.add_edge(1, 3, data=2.5)
    d.add_edge(2, 3, data=1.0)
    return d


STG_CLASSIC = """
# classic format: no communication costs
4
0 0 0
1 3 1 0
2 4 1 0
3 0 2 1 2
"""


class TestParseStg:
    def test_classic(self):
        d = dio.parse_stg(STG_CLASSIC)
        assert d.num_tasks == 4
        assert d.cost(1) == 3.0
        assert set(d.predecessors(3)) == {1, 2}
        assert d.data(1, 3) == 0.0

    def test_extended_data_tokens(self):
        text = "2\n0 1 0\n1 2 1 0:7.5\n"
        d = dio.parse_stg(text)
        assert d.data(0, 1) == 7.5

    def test_dummy_count_convention(self):
        # Declared count may exclude the two dummy endpoints.
        text = "2\n0 0 0\n1 1 1 0\n2 1 1 0\n3 0 2 1 2\n"
        d = dio.parse_stg(text)
        assert d.num_tasks == 4

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            dio.parse_stg("")

    def test_bad_count(self):
        with pytest.raises(ParseError):
            dio.parse_stg("x\n")

    def test_pred_count_mismatch(self):
        with pytest.raises(ParseError) as e:
            dio.parse_stg("2\n0 1 0\n1 1 2 0\n")
        assert "predecessors" in str(e.value)

    def test_unknown_pred(self):
        with pytest.raises(ParseError):
            dio.parse_stg("2\n0 1 0\n1 1 1 9\n")

    def test_duplicate_task(self):
        with pytest.raises(ParseError):
            dio.parse_stg("2\n0 1 0\n0 1 0\n")

    def test_count_mismatch(self):
        with pytest.raises(ParseError):
            dio.parse_stg("9\n0 1 0\n")

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as e:
            dio.parse_stg("2\n0 1 0\n1 1 1 bad:x\n")
        assert e.value.line == 3


class TestStgRoundTrip:
    def test_round_trip(self, int_dag):
        text = dio.dump_stg(int_dag)
        back = dio.parse_stg(text)
        assert back.num_tasks == int_dag.num_tasks
        assert set(back.edges()) == set(int_dag.edges())
        for t in int_dag.tasks():
            assert back.cost(t) == pytest.approx(int_dag.cost(t))
        for u, v in int_dag.edges():
            assert back.data(u, v) == pytest.approx(int_dag.data(u, v))

    def test_file_round_trip(self, int_dag, tmp_path):
        p = tmp_path / "g.stg"
        dio.save_stg(int_dag, p)
        back = dio.load_stg(p)
        assert back.num_tasks == int_dag.num_tasks
        assert back.name == "g"

    def test_non_integer_ids_rejected(self):
        d = TaskDAG()
        d.add_task("a")
        with pytest.raises(ParseError):
            dio.dump_stg(d)


class TestJson:
    def test_round_trip(self, int_dag):
        back = dio.from_json(dio.to_json(int_dag))
        assert back.name == int_dag.name
        assert set(back.edges()) == set(int_dag.edges())
        for u, v in int_dag.edges():
            assert back.data(u, v) == pytest.approx(int_dag.data(u, v))

    def test_attrs_preserved(self):
        d = TaskDAG("attrs")
        d.add_task(Task("x", cost=1.0, attrs={"kind": "pivot"}))
        back = dio.from_json(dio.to_json(d))
        assert back.task("x").attrs["kind"] == "pivot"

    def test_file_round_trip(self, int_dag, tmp_path):
        p = tmp_path / "g.json"
        dio.save_json(int_dag, p)
        assert dio.load_json(p).num_tasks == int_dag.num_tasks

    def test_invalid_json(self):
        with pytest.raises(ParseError):
            dio.from_json("{nope")

    def test_wrong_shape(self):
        with pytest.raises(ParseError):
            dio.from_json('["list", "not", "object"]')


class TestDot:
    def test_contains_nodes_and_edges(self, int_dag):
        dot = dio.to_dot(int_dag)
        assert dot.startswith("digraph")
        assert '"1" -> "3"' in dot
        assert "2.5" in dot  # the edge label

    def test_quoting(self):
        d = TaskDAG('we"ird')
        d.add_task(Task('a"b'))
        dot = dio.to_dot(d)
        assert "\\\"" in dot

    def test_round_trip_structure(self, int_dag):
        back = dio.from_dot(dio.to_dot(int_dag))
        assert back.num_tasks == int_dag.num_tasks
        assert back.num_edges == int_dag.num_edges
        # Ids stringify; map them for comparisons.
        assert back.cost("1") == pytest.approx(int_dag.cost(1))
        assert back.data("1", "3") == pytest.approx(int_dag.data(1, 3))

    def test_round_trip_name_and_quotes(self):
        d = TaskDAG('we"ird')
        d.add_task(Task('a"b', cost=2.0))
        back = dio.from_dot(dio.to_dot(d))
        assert back.name == 'we"ird'
        assert back.has_task('a"b')
        assert back.cost('a"b') == 2.0

    def test_load_dot(self, int_dag, tmp_path):
        path = tmp_path / "g.dot"
        path.write_text(dio.to_dot(int_dag))
        back = dio.load_dot(path)
        assert back.num_tasks == int_dag.num_tasks

    def test_unparseable_statement(self):
        with pytest.raises(ParseError):
            dio.from_dot('digraph "x" {\n  garbage here\n}')

    def test_bad_cost_label(self):
        with pytest.raises(ParseError):
            dio.from_dot('digraph "x" {\n  "a" [label="a\\nNaNope"];\n}')

    def test_edge_without_label(self):
        back = dio.from_dot('digraph "x" {\n  "a" -> "b";\n}')
        assert back.data("a", "b") == 0.0
        assert back.cost("a") == 1.0  # implicit node
