"""Property-based tests for graph transforms and composition."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dag.compose import disjoint_union, per_dag_spans, sequential_chain
from repro.dag.generators import random_dag
from repro.dag.transform import extract_subgraph, merge_tasks, zero_small_edges
from repro.exceptions import CycleError
from repro.instance import homogeneous_instance
from repro.schedule.validation import violations
from repro.schedulers.heft import HEFT

dag_params = st.tuples(
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=0, max_value=5000),
)


@given(dag_params, st.data())
@settings(max_examples=80, deadline=None)
def test_merge_conserves_cost(params, data):
    n, seed = params
    dag = random_dag(n, seed=seed)
    tasks = list(dag.tasks())
    size = data.draw(st.integers(min_value=1, max_value=len(tasks)))
    group = data.draw(st.permutations(tasks)).copy()[:size]
    try:
        merged = merge_tasks(dag, group, ("merged",))
    except CycleError:
        assume(False)  # contraction illegal for this draw; skip
        return
    merged.validate()
    assert abs(merged.total_cost() - dag.total_cost()) < 1e-6
    assert merged.num_tasks == dag.num_tasks - len(set(group)) + 1


@given(dag_params, st.floats(min_value=0.0, max_value=50.0))
@settings(max_examples=80, deadline=None)
def test_zero_small_edges_monotone(params, threshold):
    n, seed = params
    dag = random_dag(n, seed=seed)
    out = zero_small_edges(dag, threshold)
    assert out.total_data() <= dag.total_data() + 1e-9
    assert set(out.edges()) == set(dag.edges())
    for u, v in out.edges():
        d = out.data(u, v)
        assert d == 0.0 or d >= threshold


@given(dag_params, st.data())
@settings(max_examples=60, deadline=None)
def test_extract_subgraph_valid(params, data):
    n, seed = params
    dag = random_dag(n, seed=seed)
    tasks = list(dag.tasks())
    keep = data.draw(st.lists(st.sampled_from(tasks), unique=True, min_size=1))
    sub = extract_subgraph(dag, keep)
    sub.validate()
    assert sub.num_tasks == len(keep)
    for u, v in sub.edges():
        assert dag.has_edge(u, v)


@given(
    st.lists(dag_params, min_size=1, max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_union_schedulable_and_spans_cover(params_list):
    dags = {
        f"app{i}": random_dag(n, seed=seed) for i, (n, seed) in enumerate(params_list)
    }
    union = disjoint_union(dags)
    union.validate()
    assert union.num_tasks == sum(d.num_tasks for d in dags.values())
    inst = homogeneous_instance(union, num_procs=3)
    schedule = HEFT().schedule(inst)
    assert violations(schedule, inst) == []
    spans = per_dag_spans(schedule, union)
    assert set(spans) == set(dags)
    assert max(spans.values()) <= schedule.makespan + 1e-9


@given(st.lists(dag_params, min_size=2, max_size=3))
@settings(max_examples=30, deadline=None)
def test_chain_serialises_apps(params_list):
    dags = {
        f"app{i}": random_dag(n, seed=seed) for i, (n, seed) in enumerate(params_list)
    }
    chain = sequential_chain(dags)
    chain.validate()
    inst = homogeneous_instance(chain, num_procs=3)
    schedule = HEFT().schedule(inst)
    assert violations(schedule, inst) == []
    spans = per_dag_spans(schedule, chain)
    # Later apps finish no earlier than earlier ones started gating.
    tags = sorted(spans)
    for a, b in zip(tags, tags[1:]):
        assert spans[b] >= spans[a] - 1e-9
