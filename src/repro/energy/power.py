"""Processor power model and schedule energy accounting.

The standard CMOS abstraction: at relative frequency ``f`` (1.0 =
nominal) a processor draws ``static + dynamic * f^3`` power while busy
and ``static`` power while idle; a task's execution time scales as
``1/f``.  Energy of a busy interval of nominal duration ``d`` run at
``f`` is therefore

    ``static * d/f  +  dynamic * f^3 * d/f  =  (static/f + dynamic*f^2) * d``

— the dynamic part falls quadratically with ``f``, which is the entire
point of slack reclamation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import ConfigurationError
from repro.schedule.schedule import Schedule
from repro.types import TaskId


@dataclass(frozen=True)
class PowerModel:
    """Uniform per-processor power parameters (relative units).

    Attributes
    ----------
    static:
        Power drawn whenever the processor is on (idle included),
        per time unit.
    dynamic:
        Dynamic power coefficient at nominal frequency (f = 1).
    """

    static: float = 0.2
    dynamic: float = 1.0

    def __post_init__(self) -> None:
        if self.static < 0 or self.dynamic < 0:
            raise ConfigurationError("power parameters must be >= 0")

    def busy_power(self, f: float) -> float:
        """Power while executing at relative frequency ``f``."""
        if not (0.0 < f <= 1.0):
            raise ConfigurationError(f"frequency must be in (0, 1], got {f}")
        return self.static + self.dynamic * f**3

    def busy_energy(self, nominal_duration: float, f: float) -> float:
        """Energy to run a task of nominal duration at frequency ``f``."""
        if nominal_duration < 0:
            raise ConfigurationError("duration must be >= 0")
        if not (0.0 < f <= 1.0):
            raise ConfigurationError(f"frequency must be in (0, 1], got {f}")
        actual = nominal_duration / f
        return self.busy_power(f) * actual


def schedule_energy(
    schedule: Schedule,
    model: PowerModel,
    frequencies: Mapping[TaskId, float] | None = None,
) -> float:
    """Total energy of a schedule under the power model.

    ``frequencies`` maps task id -> relative frequency for *primary*
    copies (default 1.0 everywhere; duplicates always run at nominal —
    they exist to be fast).  Idle intervals up to the makespan charge
    static power on every processor.
    """
    frequencies = frequencies or {}
    span = schedule.makespan
    energy = 0.0
    busy_actual: dict = {p: 0.0 for p in schedule.machine.proc_ids()}
    for placed in schedule.all_placements():
        f = 1.0 if placed.duplicate else float(frequencies.get(placed.task, 1.0))
        if not (0.0 < f <= 1.0):
            raise ConfigurationError(f"frequency for {placed.task!r} must be in (0, 1]")
        # `placed.duration` is the nominal (f = 1) duration.
        actual = placed.duration / f
        energy += model.dynamic * f**3 * actual
        busy_actual[placed.proc] += actual
    # Static power: every processor is on for the whole makespan.
    energy += model.static * span * schedule.machine.num_procs
    return energy
