"""Async (and sync-wrapped) client for the scheduling service.

:class:`ServiceClient` speaks the minimal HTTP/1.1 dialect of
:mod:`repro.service.server` over one connection per request
(``Connection: close``), which keeps both ends trivial and is plenty
for a local daemon.  Server-side failures come back as the same
exception types the in-process engine raises — a caller can move
between ``engine.submit(...)`` and ``client.schedule(...)`` without
changing its error handling.
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict

from repro.instance import Instance
from repro.instance_io import instance_to_json
from repro.service.errors import (
    RequestError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    ServiceTimeoutError,
    WorkerError,
)
from repro.service.metrics import ServiceStats
from repro.service.protocol import ScheduleResult, make_request_doc

_ERROR_BY_STATUS = {
    400: RequestError,
    404: RequestError,
    405: RequestError,
    413: RequestError,
    429: ServiceOverloadedError,
    503: ServiceClosedError,
    504: ServiceTimeoutError,
}

#: Encoded request bodies memoised per client (instance fingerprint x
#: alg x timeout).  Resubmitting an instance skips re-serialisation and
#: sends byte-identical bodies, which the server's exact-body fast path
#: answers without parsing.
_BODY_CACHE_SIZE = 128


def parse_endpoint(endpoint: str, default_port: int = 8787) -> tuple[str, int]:
    """Parse ``host``, ``host:port`` or ``http://host:port`` strings."""
    text = endpoint.strip()
    for prefix in ("http://", "https://"):
        if text.startswith(prefix):
            text = text[len(prefix):]
    text = text.rstrip("/")
    host, _, port_text = text.partition(":")
    if not host:
        host = "127.0.0.1"
    if not port_text:
        return host, default_port
    try:
        return host, int(port_text)
    except ValueError:
        raise RequestError(f"invalid endpoint {endpoint!r}") from None


class ServiceClient:
    """Talks to one running :class:`~repro.service.server.ScheduleServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 connect_timeout: float = 5.0, request_timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self._body_cache: OrderedDict[tuple, bytes] = OrderedDict()

    @classmethod
    def at(cls, endpoint: str, **kwargs) -> "ServiceClient":
        """Build a client from an ``host:port`` endpoint string."""
        host, port = parse_endpoint(endpoint)
        return cls(host=host, port=port, **kwargs)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    async def _request(self, method: str, path: str,
                       body: bytes | None = None) -> tuple[int, bytes]:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.connect_timeout
        )
        try:
            payload = body or b""
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
            # Read headers, then exactly Content-Length body bytes.  Never
            # read-to-EOF: pool workers forked on the server side may hold
            # an inherited copy of this socket, delaying EOF indefinitely.
            header = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), self.request_timeout
            )
            content_length = 0
            for line in header.split(b"\r\n")[1:]:
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
            answer = await asyncio.wait_for(
                reader.readexactly(content_length), self.request_timeout
            )
        except asyncio.IncompleteReadError as exc:
            raise ServiceError(
                f"connection to {self.host}:{self.port} closed mid-response"
            ) from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        status_line = header.split(b"\r\n", 1)[0].decode("latin-1")
        try:
            status = int(status_line.split()[1])
        except (IndexError, ValueError):
            raise ServiceError(f"malformed status line {status_line!r}") from None
        return status, answer

    async def _request_json(self, method: str, path: str,
                            doc: dict | None = None,
                            body: bytes | None = None) -> dict:
        if body is None and doc is not None:
            body = json.dumps(doc).encode("utf-8")
        status, payload = await self._request(method, path, body)
        try:
            answer = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            answer = {"status": "error", "error": payload.decode("latin-1", "replace")}
        if status != 200:
            exc_type = _ERROR_BY_STATUS.get(status, WorkerError)
            raise exc_type(answer.get("error", f"HTTP {status}"))
        return answer

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def _schedule_body(self, instance: Instance, alg: str,
                       timeout: float | None,
                       trace_id: str | None = None) -> bytes:
        key = (instance.fingerprint(), alg, timeout, trace_id)
        body = self._body_cache.get(key)
        if body is None:
            doc = make_request_doc(json.loads(instance_to_json(instance)), alg,
                                   timeout, trace_id=trace_id)
            body = json.dumps(doc).encode("utf-8")
            self._body_cache[key] = body
            while len(self._body_cache) > _BODY_CACHE_SIZE:
                self._body_cache.popitem(last=False)
        else:
            self._body_cache.move_to_end(key)
        return body

    async def schedule(self, instance: Instance, alg: str = "IMP",
                       timeout: float | None = None,
                       trace_id: str | None = None) -> ScheduleResult:
        """Submit one instance; returns the placement result.

        ``trace_id`` (optional) is echoed back in the result and stamped
        on every server/worker span this request produces.
        """
        body = self._schedule_body(instance, alg, timeout, trace_id)
        answer = await self._request_json("POST", "/v1/schedule", body=body)
        return ScheduleResult.from_payload(answer["result"])

    async def stats(self) -> ServiceStats:
        """Fetch the server's counter snapshot."""
        answer = await self._request_json("GET", "/v1/stats")
        return ServiceStats(**answer["stats"])

    async def metrics_text(self) -> str:
        """Fetch the Prometheus-style exposition text."""
        status, payload = await self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"GET /metrics -> HTTP {status}")
        return payload.decode("utf-8")

    async def health(self) -> bool:
        """True when the daemon is up and not draining."""
        try:
            answer = await self._request_json("GET", "/healthz")
        except (OSError, asyncio.TimeoutError, ServiceError):
            return False
        return answer.get("status") == "ok" and not answer.get("draining", False)

    async def shutdown(self) -> None:
        """Ask the daemon to drain and exit."""
        await self._request_json("POST", "/v1/shutdown")

    # ------------------------------------------------------------------
    # sync conveniences (CLI, scripts)
    # ------------------------------------------------------------------
    def schedule_sync(self, instance: Instance, alg: str = "IMP",
                      timeout: float | None = None,
                      trace_id: str | None = None) -> ScheduleResult:
        return asyncio.run(self.schedule(instance, alg, timeout, trace_id=trace_id))

    def stats_sync(self) -> ServiceStats:
        return asyncio.run(self.stats())

    def health_sync(self) -> bool:
        return asyncio.run(self.health())

    def shutdown_sync(self) -> None:
        asyncio.run(self.shutdown())
