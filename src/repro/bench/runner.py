"""Sweep runner: evaluates scheduler sets over instance families.

The runner is metric-agnostic and deterministic: every repetition of
every x-point derives its own RNG stream from the master seed, so
results are independent of execution order and stable across runs.

With ``workers > 1`` replications fan out over a
:class:`concurrent.futures.ProcessPoolExecutor`.  Because each
replication owns a pre-spawned child RNG stream (``SeedSequence``
spawning, done once up front) and results are reassembled in replication
order, the parallel path is bit-identical to the serial path for any
worker count — asserted by the property suite.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.instance import Instance
from repro.obs import Tracer, get_tracer, use_tracer
from repro.schedule import metrics as M
from repro.schedule.schedule import Schedule
from repro.schedule.validation import validate
from repro.schedulers.registry import get_scheduler
from repro.utils.rng import spawn_children
from repro.utils.tables import format_series

def _energy(schedule: Schedule, instance: Instance) -> float:
    """Nominal-frequency energy under the default power model."""
    from repro.energy import PowerModel, schedule_energy

    return schedule_energy(schedule, PowerModel())


def _energy_dvfs(schedule: Schedule, instance: Instance) -> float:
    """Energy after DVFS slack reclamation (makespan-preserving)."""
    from repro.energy import PowerModel, reclaim_slack

    return reclaim_slack(schedule, instance, PowerModel()).energy_scaled


#: Metric name -> callable(schedule, instance) used by sweeps.
METRICS: Mapping[str, Callable[[Schedule, Instance], float]] = {
    "slr": M.slr,
    "speedup": M.speedup,
    "efficiency": M.efficiency,
    "makespan": lambda s, i: M.makespan(s),
    "load_balance": lambda s, i: M.load_balance(s),
    "duplicates": lambda s, i: float(M.num_duplicates(s)),
    "energy": _energy,
    "energy_dvfs": _energy_dvfs,
}


@dataclass
class SweepResult:
    """Averaged metric per x-point per scheduler, plus raw samples."""

    x_name: str
    x_values: list
    metric: str
    series: dict[str, list[float]] = field(default_factory=dict)
    raw: dict[str, list[list[float]]] = field(default_factory=dict)
    sched_seconds: dict[str, float] = field(default_factory=dict)

    def table(self, title: str | None = None) -> str:
        """Render the figure as an aligned text series table."""
        return format_series(self.x_name, self.x_values, self.series, title=title)

    def plot(self, title: str | None = None, **kwargs) -> str:
        """Render the figure as an ASCII chart (cosmetic companion to
        :meth:`table`)."""
        from repro.utils.plot import ascii_plot

        xs = [float(x) for x in self.x_values]
        return ascii_plot(xs, self.series, title=title, **kwargs)

    def best_at(self, x_index: int) -> str:
        """Scheduler with the best (lowest for slr/makespan, highest for
        speedup/efficiency) average at one x-point."""
        higher_better = self.metric in ("speedup", "efficiency", "load_balance")
        items = [(name, vals[x_index]) for name, vals in self.series.items()]
        if higher_better:
            return max(items, key=lambda kv: kv[1])[0]
        return min(items, key=lambda kv: kv[1])[0]

    def mean_over_x(self, name: str) -> float:
        """Average of a scheduler's series across all x-points."""
        return float(np.mean(self.series[name]))


def _run_replication(
    payload: tuple,
) -> tuple[dict[str, float], dict[str, float], dict | None]:
    """Run every scheduler on one replication's instance.

    Module-level so it is picklable for the process pool; the serial
    path calls it directly, which is what makes serial == parallel a
    structural property rather than a coincidence.

    When the payload's ``trace`` flag is set, the replication runs under
    its own local :class:`~repro.obs.Tracer` (installed as the module
    default for the duration, so scheduler-internal spans land in it)
    and returns the exported trace as a picklable third element —
    identical machinery in the serial path and in a pool worker, which
    is what lets :func:`run_sweep` merge per-worker spans into one
    trace without touching the deterministic result plumbing.
    """
    scheduler_names, instance_factory, x, rng, metric, check, trace = payload
    metric_fn = METRICS[metric]
    samples: dict[str, float] = {}
    seconds: dict[str, float] = {}
    local = Tracer(name="sweep-worker") if trace else None

    def body(tracer) -> None:
        with tracer.span("sweep.replication", x=str(x), metric=metric):
            instance = instance_factory(x, rng)
            for name in scheduler_names:
                scheduler = get_scheduler(name)
                with tracer.span("sweep.sched", alg=name, x=str(x)):
                    t0 = time.perf_counter()
                    schedule = scheduler.schedule(instance)
                    seconds[name] = time.perf_counter() - t0
                if check:
                    with tracer.span("sweep.validate", alg=name):
                        validate(schedule, instance)
                samples[name] = metric_fn(schedule, instance)

    if local is not None:
        with use_tracer(local):
            body(local)
        return samples, seconds, local.export()
    body(get_tracer())  # the no-op default unless a caller installed one
    return samples, seconds, None


def _check_picklable(instance_factory: Callable) -> None:
    try:
        pickle.dumps(instance_factory)
    except Exception as exc:
        raise ConfigurationError(
            "workers > 1 requires a picklable instance_factory (module-level "
            "function or dataclass like bench.workloads.SweepFactory, not a "
            f"lambda/closure): {exc}"
        ) from exc


def run_sweep(
    scheduler_names: Sequence[str],
    x_name: str,
    x_values: Sequence,
    instance_factory: Callable[[object, np.random.Generator], Instance],
    reps: int = 5,
    metric: str = "slr",
    seed: int = 0,
    check: bool = True,
    workers: int = 1,
    tracer=None,
) -> SweepResult:
    """Run one figure-style sweep.

    For every ``x`` in ``x_values`` and every repetition, one instance
    is built via ``instance_factory(x, rng)`` and *all* schedulers run
    on that same instance (paired comparison, as in the papers).  The
    reported series are per-x means of ``metric``.

    ``check=True`` validates every produced schedule — slow but the
    default, because a bench that reports infeasible schedules is worse
    than no bench.

    ``workers > 1`` distributes replications over a process pool.  The
    per-replication RNG streams are spawned once from ``seed`` (exactly
    as in the serial path) and shipped to the workers, and results are
    reassembled in replication order, so the outcome is bit-identical to
    ``workers=1``.  The factory must then be picklable — module-level
    functions and :class:`repro.bench.workloads.SweepFactory` qualify,
    lambdas do not (enforced whenever ``workers > 1`` is *requested*).
    The effective pool size is capped at ``os.cpu_count()``; when the
    cap leaves a single worker, the sweep runs serially — same results,
    none of the pool overhead.

    ``tracer`` (or an enabled module-default tracer from
    :func:`repro.obs.set_tracer`) turns on observability: every
    replication records its per-scheduler spans into a local tracer —
    in a pool worker when parallel — and the exports are merged, in
    replication order, under one ``sweep.run`` span.  Tracing rides on
    the *result* plumbing, never the RNG plumbing, so traced and
    untraced sweeps produce bit-identical series.
    """
    if metric not in METRICS:
        raise ConfigurationError(f"unknown metric {metric!r}; known: {sorted(METRICS)}")
    if reps < 1:
        raise ConfigurationError(f"reps must be >= 1, got {reps}")
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")

    obs = tracer if tracer is not None else get_tracer()
    trace = bool(obs.enabled)

    result = SweepResult(x_name=x_name, x_values=list(x_values), metric=metric)
    names = list(scheduler_names)
    for name in names:
        result.series[name] = []
        result.raw[name] = []
        result.sched_seconds[name] = 0.0

    streams = spawn_children(seed, len(x_values) * reps)
    payloads = [
        (names, instance_factory, x, streams[xi * reps + rep], metric, check, trace)
        for xi, x in enumerate(x_values)
        for rep in range(reps)
    ]
    with obs.span("sweep.run", metric=metric, x_name=x_name,
                  reps=reps, workers=workers) as sweep_span:
        if workers == 1:
            outcomes = [_run_replication(p) for p in payloads]
        else:
            # The picklability contract is enforced for any requested
            # parallelism, even when the pool is then skipped — callers
            # should not start passing lambdas just because the current
            # box happens to be small.
            _check_picklable(instance_factory)
            # Oversubscribing a small box makes the sweep *slower* than
            # serial (pool startup + pickling with no real concurrency),
            # so requested workers are capped at the core count and a
            # cap of one falls back to the serial path entirely.
            effective = min(workers, os.cpu_count() or 1)
            if effective <= 1:
                outcomes = [_run_replication(p) for p in payloads]
            else:
                with ProcessPoolExecutor(max_workers=effective) as pool:
                    outcomes = list(pool.map(_run_replication, payloads, chunksize=1))
        if trace:
            for _, _, rep_trace in outcomes:
                if rep_trace is not None:
                    obs.absorb(rep_trace, parent=sweep_span.sid)
            obs.count("sweep.replications", len(outcomes))

    for xi in range(len(result.x_values)):
        samples: dict[str, list[float]] = {n: [] for n in names}
        for rep in range(reps):
            rep_samples, rep_seconds, _ = outcomes[xi * reps + rep]
            for name in names:
                samples[name].append(rep_samples[name])
                result.sched_seconds[name] += rep_seconds[name]
        for name in names:
            result.series[name].append(float(np.mean(samples[name])))
            result.raw[name].append(samples[name])
    return result


def run_instances(
    scheduler_names: Sequence[str],
    instances: Sequence[Instance],
    check: bool = True,
) -> dict[str, list[float]]:
    """Run every scheduler on every instance; returns makespans.

    The aligned lists feed :func:`repro.schedule.metrics.pairwise_comparison`
    (the better/equal/worse table, E9).
    """
    out: dict[str, list[float]] = {n: [] for n in scheduler_names}
    for instance in instances:
        for name in scheduler_names:
            schedule = get_scheduler(name).schedule(instance)
            if check:
                validate(schedule, instance)
            out[name].append(schedule.makespan)
    return out
