"""Property-based tests for the discrete-event simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag.generators import random_dag
from repro.instance import make_instance
from repro.schedulers.registry import get_scheduler
from repro.sim import MultiplicativeNoise, execute

instance_params = st.tuples(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=4),
    st.floats(min_value=0.0, max_value=6.0),
    st.integers(min_value=0, max_value=5000),
)


def build(params):
    n, q, ccr, seed = params
    dag = random_dag(n, ccr=ccr, seed=seed)
    return make_instance(dag, num_procs=q, heterogeneity=0.5, seed=seed)


@given(instance_params, st.sampled_from(["HEFT", "DUP-HEFT", "TDS", "MCP"]))
@settings(max_examples=80, deadline=None)
def test_exact_replay_of_semi_active_schedules(params, name):
    inst = build(params)
    schedule = get_scheduler(name).schedule(inst)
    replay = execute(schedule, inst)
    # Left-shift semantics: never later, and for our semi-active
    # schedules the copies replay at exactly their planned times.
    assert replay.makespan <= schedule.makespan + 1e-6
    assert len(replay.copies) == len(schedule.all_placements())


@given(instance_params, st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_noise_preserves_precedence(params, cv):
    inst = build(params)
    schedule = get_scheduler("HEFT").schedule(inst)
    result = execute(schedule, inst, MultiplicativeNoise(cv, seed=1))
    finish = {}
    for copy in result.copies:
        finish.setdefault(copy.task, copy.end)
        finish[copy.task] = min(finish[copy.task], copy.end)
    for copy in result.copies:
        for parent in inst.dag.predecessors(copy.task):
            assert copy.start >= finish[parent] - 1e-6 or any(
                c.task == parent and c.end <= copy.start + 1e-6
                for c in result.copies
            )


@given(instance_params)
@settings(max_examples=60, deadline=None)
def test_contention_only_delays(params):
    inst = build(params)
    schedule = get_scheduler("HEFT").schedule(inst)
    free = execute(schedule, inst, link_contention=False)
    busy = execute(schedule, inst, link_contention=True)
    assert busy.makespan >= free.makespan - 1e-9
    # Per-copy: contention can only push starts later.
    free_starts = {(c.task, c.proc): c.start for c in free.copies}
    for c in busy.copies:
        assert c.start >= free_starts[(c.task, c.proc)] - 1e-9


@given(instance_params)
@settings(max_examples=40, deadline=None)
def test_zero_cv_noise_is_identity(params):
    inst = build(params)
    schedule = get_scheduler("HEFT").schedule(inst)
    a = execute(schedule, inst)
    b = execute(schedule, inst, MultiplicativeNoise(0.0, seed=3))
    assert abs(a.makespan - b.makespan) < 1e-12


# ----------------------------------------------------------------------
# EventQueue clamp: drained times are non-decreasing by construction
# ----------------------------------------------------------------------

_adversarial_times = st.one_of(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    # Values engineered to sit inside the 1e-9 clamp tolerance of a
    # previously popped timestamp.
    st.floats(min_value=0.0, max_value=10.0).map(lambda x: x + 9.9e-10),
    st.sampled_from([0.0, 1e-12, 5e-10, 1e-9, 1.0 - 5e-10, 1.0, 1.0 + 5e-10]),
)


@given(st.lists(_adversarial_times, min_size=1, max_size=60))
@settings(max_examples=200, deadline=None)
def test_drained_event_times_never_decrease(times):
    from repro.sim.engine import EventQueue, SimulationError

    q = EventQueue()
    drained = []
    for i, t in enumerate(times):
        # Interleave pushes and pops so `now` keeps moving: every other
        # step drains one event, then we push relative to the clock —
        # including nudges *below* now that the clamp must absorb.
        try:
            q.push(t, "a")
            q.push(max(0.0, t - 9.9e-10), "nudge-low")
        except SimulationError:
            continue  # pushed into the genuine past: correctly refused
        if i % 2 and len(q):
            drained.append(q.pop().time)
    while len(q):
        drained.append(q.pop().time)
    assert all(b >= a for a, b in zip(drained, drained[1:]))
    # The clamp also guarantees nothing fired before the final clock.
    assert not drained or drained[-1] <= q.now
