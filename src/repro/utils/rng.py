"""Deterministic random-number-generator plumbing.

Everything stochastic in the library (DAG generation, ETC matrices,
runtime noise) accepts a ``seed`` argument that may be ``None``, an
``int`` or an existing :class:`numpy.random.Generator`.  This module
normalises those inputs so that:

* the same integer seed always produces the same results,
* independent sub-streams can be derived for parallel experiment arms
  without correlation (via :func:`spawn_children`).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    ``None`` yields a nondeterministically-seeded generator; an ``int`` or
    :class:`~numpy.random.SeedSequence` yields a deterministic one; an
    existing generator is passed through unchanged (so callers can thread
    one stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is not None and not isinstance(seed, (int, np.integer)):
        raise TypeError(f"seed must be None, int or Generator, got {type(seed).__name__}")
    return np.random.default_rng(seed)


def spawn_children(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Used by the bench harness to give each repetition of an experiment its
    own stream, so adding repetitions never perturbs earlier ones.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children by jumping the parent's bit stream.
        return [np.random.default_rng(seed.integers(0, 2**63)) for _ in range(n)]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
