"""Schedule-quality metrics used throughout the evaluation.

Definitions follow the HEFT paper (Topcuoglu et al., TPDS 2002), which
the target ICPP-2007 paper's genre standardises on:

* **makespan** — finish time of the schedule.
* **SLR** (schedule length ratio) — makespan divided by the sum of the
  minimum ETC entries along the (communication-free) critical path.
  SLR >= 1 always; lower is better; 1.0 means the schedule is as fast as
  the absolute critical-path bound.
* **speedup** — best sequential time (min over processors of the full
  ETC column sum) divided by makespan.
* **efficiency** — speedup divided by the processor count.
* **pairwise comparison** — for each pair of schedulers, on what
  percentage of instances each produced the strictly better / equal /
  worse makespan (the classic "better/equal/worse" table).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import ScheduleError
from repro.instance import Instance
from repro.schedule.schedule import Schedule

#: Two makespans closer than this (relatively) count as "equal" in the
#: pairwise comparison, mirroring the papers' percentage tables.
_PAIR_RTOL = 1e-9


def makespan(schedule: Schedule) -> float:
    """Finish time of the schedule (maximum over all placed copies)."""
    return schedule.makespan


def slr(schedule: Schedule, instance: Instance) -> float:
    """Schedule length ratio (lower is better, >= 1 for feasible input).

    Raises :class:`ScheduleError` for a degenerate instance whose
    critical-path bound is zero (no computation at all).
    """
    bound = instance.cp_min_length
    if bound <= 0:
        raise ScheduleError("SLR undefined: instance has a zero critical-path bound")
    return schedule.makespan / bound


def speedup(schedule: Schedule, instance: Instance) -> float:
    """Sequential-over-parallel speedup (higher is better)."""
    span = schedule.makespan
    if span <= 0:
        raise ScheduleError("speedup undefined for an empty schedule")
    return instance.sequential_time / span


def efficiency(schedule: Schedule, instance: Instance) -> float:
    """Speedup normalised by processor count, in (0, 1] for sane inputs."""
    return speedup(schedule, instance) / instance.num_procs


def total_idle_time(schedule: Schedule) -> float:
    """Summed idle time across processors up to each one's last finish."""
    return sum(schedule.timeline(p).idle_time() for p in schedule.machine.proc_ids())


def load_balance(schedule: Schedule) -> float:
    """Mean busy time divided by max busy time, in (0, 1]; 1 is perfect.

    Returns 1.0 for an empty schedule by convention.
    """
    busy = [schedule.timeline(p).busy_time() for p in schedule.machine.proc_ids()]
    peak = max(busy, default=0.0)
    if peak <= 0:
        return 1.0
    return (sum(busy) / len(busy)) / peak


def num_duplicates(schedule: Schedule) -> int:
    """Number of duplicate placements in the schedule."""
    return schedule.num_duplicates()


def pairwise_comparison(
    results: Mapping[str, Sequence[float]],
) -> dict[tuple[str, str], tuple[float, float, float]]:
    """Better/equal/worse percentages between every ordered scheduler pair.

    ``results[name]`` is the makespan produced by scheduler ``name`` on a
    common sequence of instances (all sequences must be aligned and of
    equal length).  Returns ``{(a, b): (better%, equal%, worse%)}`` where
    *better* means ``a`` beat ``b``.
    """
    names = list(results)
    lengths = {len(results[n]) for n in names}
    if len(lengths) > 1:
        raise ValueError(f"result sequences have mismatched lengths: {sorted(lengths)}")
    n_inst = lengths.pop() if lengths else 0
    out: dict[tuple[str, str], tuple[float, float, float]] = {}
    for a in names:
        for b in names:
            if a == b:
                continue
            better = equal = worse = 0
            for x, y in zip(results[a], results[b]):
                if abs(x - y) <= _PAIR_RTOL * max(abs(x), abs(y), 1.0):
                    equal += 1
                elif x < y:
                    better += 1
                else:
                    worse += 1
            if n_inst:
                out[(a, b)] = (
                    100.0 * better / n_inst,
                    100.0 * equal / n_inst,
                    100.0 * worse / n_inst,
                )
            else:
                out[(a, b)] = (0.0, 0.0, 0.0)
    return out
