"""Tests for the Markdown report generator."""

import pytest

from repro.bench.report import generate_report, write_report
from repro.exceptions import ExperimentError


class TestGenerateReport:
    def test_single_experiment(self):
        text = generate_report(quick=True, experiment_ids=["E13"])
        assert text.startswith("# Regenerated evaluation")
        assert "## E13" in text
        assert "optimality gap" in text
        assert "protocol: quick" in text

    def test_metadata_header(self):
        text = generate_report(quick=True, experiment_ids=["E13"])
        assert "library: repro" in text
        assert "python:" in text

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            generate_report(experiment_ids=["E99"])

    def test_write(self, tmp_path):
        path = write_report(tmp_path / "r.md", quick=True, experiment_ids=["E13"])
        assert path.exists()
        assert "E13" in path.read_text()

    def test_order_preserved(self):
        text = generate_report(quick=True, experiment_ids=["E13", "E12"])
        assert text.index("## E13") < text.index("## E12")
