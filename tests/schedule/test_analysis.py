"""Tests for post-hoc schedule analysis (dominant path, slack, etc.)."""

import pytest

from repro.dag.generators import random_dag
from repro.instance import homogeneous_instance, make_instance
from repro.schedule.analysis import (
    communication_volume,
    dominant_path,
    explain,
    task_slacks,
    utilisation,
)
from repro.schedule.schedule import Schedule
from repro.schedulers.heft import HEFT


@pytest.fixture
def instance(diamond_dag):
    return homogeneous_instance(diamond_dag, num_procs=2, bandwidth=1.0)


@pytest.fixture
def schedule(instance):
    s = Schedule(instance.machine)
    s.add("a", 0, 0.0, 2.0)
    s.add("b", 0, 2.0, 4.0)
    s.add("c", 1, 3.0, 3.0)
    s.add("d", 0, 8.0, 2.0)   # waits for c's data (6 + 2)
    return s


class TestDominantPath:
    def test_ends_at_makespan(self, schedule, instance):
        path = dominant_path(schedule, instance)
        assert path[-1].end == pytest.approx(schedule.makespan)

    def test_hand_built_chain(self, schedule, instance):
        # d's start is pinned by c's arrival; c by a's arrival; a starts at 0.
        path = dominant_path(schedule, instance)
        assert [p.task for p in path] == ["a", "c", "d"]

    def test_contiguous_in_time(self, schedule, instance):
        path = dominant_path(schedule, instance)
        for earlier, later in zip(path, path[1:]):
            assert later.start >= earlier.end - 1e-9

    def test_empty_schedule(self, instance):
        assert dominant_path(Schedule(instance.machine), instance) == []

    @pytest.mark.parametrize("seed", range(3))
    def test_random_schedules_have_paths(self, seed):
        dag = random_dag(40, seed=seed)
        inst = make_instance(dag, num_procs=4, seed=seed)
        s = HEFT().schedule(inst)
        path = dominant_path(s, inst)
        assert len(path) >= 1
        assert path[-1].end == pytest.approx(s.makespan)


class TestSlacks:
    def test_nonnegative(self, schedule, instance):
        assert all(v >= 0 for v in task_slacks(schedule, instance).values())

    def test_dominant_tasks_zero_slack(self, schedule, instance):
        slack = task_slacks(schedule, instance)
        assert slack["a"] == pytest.approx(0.0)
        assert slack["c"] == pytest.approx(0.0)
        assert slack["d"] == pytest.approx(0.0)

    def test_off_path_task_has_slack(self, schedule, instance):
        # b ends at 6; d (local consumer) starts at 8 -> slack 2.
        slack = task_slacks(schedule, instance)
        assert slack["b"] == pytest.approx(2.0)


class TestUtilisationAndVolume:
    def test_utilisation_values(self, schedule, instance):
        util = utilisation(schedule)
        assert util[0] == pytest.approx(8.0 / 10.0)
        assert util[1] == pytest.approx(3.0 / 10.0)

    def test_utilisation_empty(self, instance):
        util = utilisation(Schedule(instance.machine))
        assert set(util.values()) == {0.0}

    def test_communication_volume(self, schedule, instance):
        vol = communication_volume(schedule, instance)
        # a->c ships 1 unit 0->1; c->d ships 2 units 1->0.
        assert vol[(0, 1)] == pytest.approx(1.0)
        assert vol[(1, 0)] == pytest.approx(2.0)

    def test_duplicate_reduces_volume(self, instance):
        s = Schedule(instance.machine)
        s.add("a", 0, 0.0, 2.0)
        s.add("a", 1, 0.0, 2.0, duplicate=True)  # local copy feeds c
        s.add("b", 0, 2.0, 4.0)
        s.add("c", 1, 2.0, 3.0)
        s.add("d", 0, 7.0, 2.0)
        vol = communication_volume(s, instance)
        assert (0, 1) not in vol  # c charged to the local duplicate


class TestExplain:
    def test_mentions_everything(self, schedule, instance):
        text = explain(schedule, instance)
        assert "dominant path" in text
        assert "utilisation" in text
        assert "zero-slack" in text
        assert "makespan 10" in text

    def test_truncates_long_paths(self):
        dag = random_dag(60, shape=0.3, seed=9)
        inst = make_instance(dag, num_procs=2, seed=9)
        s = HEFT().schedule(inst)
        text = explain(s, inst, top=3)
        assert "more" in text or len(dominant_path(s, inst)) <= 3
