"""Monte-Carlo robustness evaluation of a static schedule.

A static plan is a point estimate; under runtime uncertainty the
makespan is a distribution.  :func:`makespan_distribution` samples that
distribution by repeated noisy simulation, and :class:`Distribution`
summarises it with the robustness statistics the stochastic-scheduling
literature reports (mean, p95, and the p95/p50 "tail ratio").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.sim.executor import execute
from repro.sim.noise import MultiplicativeNoise
from repro.utils.rng import SeedLike, spawn_children


@dataclass(frozen=True)
class Distribution:
    """Summary of a sampled makespan distribution."""

    samples: tuple[float, ...]
    planned: float

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples, ddof=1)) if len(self.samples) > 1 else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile of the sampled makespans (q in [0, 100])."""
        if not (0.0 <= q <= 100.0):
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.samples, q))

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def tail_ratio(self) -> float:
        """p95 / median — how heavy the bad tail is (1.0 = no tail)."""
        med = self.percentile(50.0)
        return self.p95 / med if med > 0 else float("inf")

    @property
    def degradation(self) -> float:
        """Mean simulated makespan relative to the plan."""
        return self.mean / self.planned if self.planned > 0 else float("inf")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Distribution(n={len(self.samples)}, mean={self.mean:.4g}, "
            f"p95={self.p95:.4g}, tail={self.tail_ratio:.3f})"
        )


def makespan_distribution(
    schedule: Schedule,
    instance: Instance,
    cv: float = 0.3,
    samples: int = 100,
    seed: SeedLike = 0,
    link_contention: bool = False,
) -> Distribution:
    """Sample the makespan distribution under multiplicative noise.

    Each sample replays ``schedule`` with an independent
    :class:`~repro.sim.noise.MultiplicativeNoise` stream derived from
    ``seed`` (so distributions are reproducible and extendable —
    requesting more samples keeps the earlier ones).
    """
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    if cv < 0:
        raise ConfigurationError(f"cv must be >= 0, got {cv}")
    streams = spawn_children(seed, samples)
    values = []
    for rng in streams:
        noise = MultiplicativeNoise(cv, seed=rng)
        values.append(
            execute(schedule, instance, noise, link_contention=link_contention).makespan
        )
    return Distribution(samples=tuple(values), planned=schedule.makespan)
