"""Tests for multi-DAG composition and fairness metrics."""

import pytest

from repro.dag.compose import (
    disjoint_union,
    per_dag_spans,
    sequential_chain,
    unfairness,
)
from repro.dag.generators import random_dag
from repro.dag.graph import TaskDAG
from repro.exceptions import GraphError
from repro.instance import homogeneous_instance
from repro.schedule.validation import validate
from repro.schedulers.heft import HEFT


@pytest.fixture
def two_apps(diamond_dag, chain_dag):
    return {"app1": diamond_dag, "app2": chain_dag}


class TestDisjointUnion:
    def test_counts(self, two_apps):
        union = disjoint_union(two_apps)
        assert union.num_tasks == 8
        assert union.num_edges == 4 + 3
        union.validate()

    def test_namespacing(self, two_apps):
        union = disjoint_union(two_apps)
        assert union.has_task(("app1", "a"))
        assert union.has_task(("app2", 0))

    def test_no_cross_edges(self, two_apps):
        union = disjoint_union(two_apps)
        for u, v in union.edges():
            assert u[0] == v[0]

    def test_sequence_input_auto_tags(self, diamond_dag):
        union = disjoint_union([diamond_dag, diamond_dag.copy()])
        assert union.num_tasks == 8  # duplicate names uniquified

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            disjoint_union([])

    def test_costs_preserved(self, two_apps):
        union = disjoint_union(two_apps)
        assert union.cost(("app1", "b")) == 4.0


class TestSequentialChain:
    def test_gating_edges(self, two_apps):
        chain = sequential_chain(two_apps)
        # app1's exit d gates app2's entry 0.
        assert chain.has_edge(("app1", "d"), ("app2", 0))
        chain.validate()

    def test_single_entry_preserved(self, two_apps):
        chain = sequential_chain(two_apps)
        assert chain.entry_tasks() == [("app1", "a")]

    def test_gating_edges_carry_no_data(self, two_apps):
        chain = sequential_chain(two_apps)
        assert chain.data(("app1", "d"), ("app2", 0)) == 0.0


class TestSpansAndFairness:
    def test_per_dag_spans(self, two_apps):
        union = disjoint_union(two_apps)
        inst = homogeneous_instance(union, num_procs=3)
        schedule = HEFT().schedule(inst)
        validate(schedule, inst)
        spans = per_dag_spans(schedule, union)
        assert set(spans) == {"app1", "app2"}
        assert max(spans.values()) == pytest.approx(schedule.makespan)

    def test_spans_reject_unnamespaced(self, diamond_dag):
        inst = homogeneous_instance(diamond_dag, num_procs=2)
        schedule = HEFT().schedule(inst)
        with pytest.raises(GraphError):
            per_dag_spans(schedule, diamond_dag)

    def test_unfairness_zero_for_equal_slowdowns(self, two_apps):
        union = disjoint_union(two_apps)
        inst = homogeneous_instance(union, num_procs=3)
        schedule = HEFT().schedule(inst)
        spans = per_dag_spans(schedule, union)
        # Using the shared spans as "solo" spans makes slowdown 1.0 for
        # all apps: unfairness must be 0.
        assert unfairness(schedule, union, spans) == pytest.approx(0.0)

    def test_unfairness_positive_when_one_app_starved(self, two_apps):
        union = disjoint_union(two_apps)
        inst = homogeneous_instance(union, num_procs=3)
        schedule = HEFT().schedule(inst)
        spans = per_dag_spans(schedule, union)
        solo = dict(spans)
        solo["app1"] = spans["app1"] / 3.0  # pretend app1 alone was 3x faster
        assert unfairness(schedule, union, solo) > 0.0

    def test_unfairness_missing_solo(self, two_apps):
        union = disjoint_union(two_apps)
        inst = homogeneous_instance(union, num_procs=3)
        schedule = HEFT().schedule(inst)
        with pytest.raises(GraphError):
            unfairness(schedule, union, {"app1": 1.0})

    def test_composite_schedulable_by_all(self, two_apps):
        union = disjoint_union(two_apps)
        inst = homogeneous_instance(union, num_procs=2)
        from repro.core import ImprovedScheduler

        for alg in (HEFT(), ImprovedScheduler()):
            validate(alg.schedule(inst), inst)

    def test_large_union(self):
        apps = {f"w{i}": random_dag(20, seed=i) for i in range(4)}
        union = disjoint_union(apps)
        assert union.num_tasks == 80
        inst = homogeneous_instance(union, num_procs=4)
        schedule = HEFT().schedule(inst)
        validate(schedule, inst)
        spans = per_dag_spans(schedule, union)
        assert len(spans) == 4
