"""Genetic-algorithm scheduler over the assignment space."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.instance import Instance
from repro.schedule.schedule import Schedule
from repro.schedulers.base import Scheduler
from repro.schedulers.heft import HEFT
from repro.schedulers.meta.decoder import compiled_decoder, decode_assignment, rank_order
from repro.utils.rng import SeedLike, as_generator


class GeneticScheduler(Scheduler):
    """Steady-state GA: tournament selection, uniform crossover,
    per-gene mutation, elitism; HEFT's assignment seeds the population.

    A chromosome is the processor index per task (in a fixed task
    order); fitness is the decoded makespan.  Deterministic per seed.
    """

    def __init__(
        self,
        population: int = 24,
        generations: int = 30,
        tournament: int = 3,
        mutation_rate: float = 0.03,
        elitism: int = 2,
        seed: SeedLike = 0,
    ) -> None:
        if population < 2:
            raise ConfigurationError(f"population must be >= 2, got {population}")
        if generations < 0:
            raise ConfigurationError(f"generations must be >= 0, got {generations}")
        if tournament < 1 or tournament > population:
            raise ConfigurationError("tournament must be in [1, population]")
        if not (0.0 <= mutation_rate <= 1.0):
            raise ConfigurationError("mutation_rate must be in [0, 1]")
        if not (0 <= elitism < population):
            raise ConfigurationError("elitism must be in [0, population)")
        self.population = population
        self.generations = generations
        self.tournament = tournament
        self.mutation_rate = mutation_rate
        self.elitism = elitism
        self._seed = seed
        self.name = "GA"

    def schedule(self, instance: Instance) -> Schedule:
        rng = as_generator(self._seed)
        order = rank_order(instance)
        tasks = list(order)
        procs = instance.machine.proc_ids()
        q = len(procs)
        n = len(tasks)
        proc_index = {p: j for j, p in enumerate(procs)}

        seed_schedule = HEFT().schedule(instance)
        if q == 1 or n == 0 or self.generations == 0:
            return seed_schedule

        def genome_to_assignment(genome: np.ndarray) -> dict:
            return {t: procs[int(g)] for t, g in zip(tasks, genome)}

        # Fitness goes through the compiled flat-array core when the
        # instance supports it (bit-identical makespans, so the search
        # trajectory is unchanged); only the final winner is ever
        # materialised as a real Schedule.
        compiled = compiled_decoder(instance)

        def fitness(genome: np.ndarray) -> float:
            return decode_assignment(instance, genome_to_assignment(genome), order).makespan

        def evaluate(population: list[np.ndarray]) -> np.ndarray:
            if compiled is not None:
                return compiled.decode_batch(np.stack(population))
            return np.array([fitness(g) for g in population])

        heft_genome = np.array(
            [proc_index[seed_schedule.proc_of(t)] for t in tasks], dtype=np.int64
        )
        pop = [heft_genome.copy()]
        while len(pop) < self.population:
            pop.append(rng.integers(0, q, size=n))
        spans = evaluate(pop)

        for _ in range(self.generations):
            ranked = np.argsort(spans, kind="stable")
            new_pop = [pop[i].copy() for i in ranked[: self.elitism]]
            while len(new_pop) < self.population:
                # Tournament selection of two parents.
                parents = []
                for _k in range(2):
                    contenders = rng.integers(0, self.population, size=self.tournament)
                    parents.append(pop[int(contenders[np.argmin(spans[contenders])])])
                # Uniform crossover + mutation.
                mask = rng.random(n) < 0.5
                child = np.where(mask, parents[0], parents[1])
                mutate = rng.random(n) < self.mutation_rate
                if mutate.any():
                    child = child.copy()
                    child[mutate] = rng.integers(0, q, size=int(mutate.sum()))
                new_pop.append(child)
            pop = new_pop
            spans = evaluate(pop)

        best = pop[int(np.argmin(spans))]
        result = decode_assignment(
            instance, genome_to_assignment(best), order, name=f"{self.name}:{instance.name}"
        )
        if result.makespan > seed_schedule.makespan + 1e-9:
            return seed_schedule  # elitism should prevent this; belt & braces
        return result
