"""Inter-processor communication-cost models.

The static-scheduling literature uses a contention-free link model: the
cost of sending ``data`` units from processor ``p`` to processor ``q`` is

    ``time = startup_latency(p, q) + data / bandwidth(p, q)``

and is zero when ``p == q`` (a child co-located with its parent reads the
data from local memory).  Topology builders in
:mod:`repro.machine.topology` precompute effective per-pair latency and
bandwidth over multi-hop routes, so every topology reduces to
:class:`LinkCommunication` at scheduling time.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Mapping, Sequence

from repro.exceptions import MachineError
from repro.types import ProcId


class CommunicationModel(ABC):
    """Abstract per-pair communication-cost model."""

    @abstractmethod
    def time(self, data: float, src: ProcId, dst: ProcId) -> float:
        """Transfer time of ``data`` units from ``src`` to ``dst``.

        Must return 0.0 when ``src == dst``.
        """

    @abstractmethod
    def average_time(self, data: float) -> float:
        """Expected transfer time over a uniformly random *distinct* pair.

        This is the quantity the HEFT family averages communication with
        when computing machine-aware task ranks.
        """

    def validate_pair(self, data: float) -> float:
        data = float(data)
        if math.isnan(data) or data < 0:
            raise MachineError(f"data volume must be >= 0, got {data!r}")
        return data


class ZeroCommunication(CommunicationModel):
    """Shared-memory model: all transfers are free.

    Useful for homogeneous shared-memory experiments and as the CCR -> 0
    limit in sweeps.
    """

    def time(self, data: float, src: ProcId, dst: ProcId) -> float:
        self.validate_pair(data)
        return 0.0

    def average_time(self, data: float) -> float:
        self.validate_pair(data)
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ZeroCommunication()"


class UniformCommunication(CommunicationModel):
    """Fully connected network with identical links.

    Parameters
    ----------
    latency:
        Per-message startup cost (>= 0).
    bandwidth:
        Link bandwidth in data units per time unit (> 0).
    """

    def __init__(self, latency: float = 0.0, bandwidth: float = 1.0) -> None:
        if latency < 0 or math.isnan(latency):
            raise MachineError(f"latency must be >= 0, got {latency!r}")
        if bandwidth <= 0 or math.isnan(bandwidth):
            raise MachineError(f"bandwidth must be > 0, got {bandwidth!r}")
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)

    def time(self, data: float, src: ProcId, dst: ProcId) -> float:
        data = self.validate_pair(data)
        if src == dst:
            return 0.0
        return self.latency + data / self.bandwidth

    def average_time(self, data: float) -> float:
        data = self.validate_pair(data)
        return self.latency + data / self.bandwidth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformCommunication(latency={self.latency}, bandwidth={self.bandwidth})"


class LinkCommunication(CommunicationModel):
    """Explicit per-pair latency/bandwidth tables.

    ``latency[src][dst]`` and ``bandwidth[src][dst]`` must be defined for
    every ordered pair of distinct processors; diagonal entries are
    ignored.  Asymmetric links are allowed.
    """

    def __init__(
        self,
        proc_ids: Sequence[ProcId],
        latency: Mapping[ProcId, Mapping[ProcId, float]],
        bandwidth: Mapping[ProcId, Mapping[ProcId, float]],
    ) -> None:
        self._ids = list(proc_ids)
        if len(set(self._ids)) != len(self._ids):
            raise MachineError("duplicate processor ids in communication model")
        self._lat: dict[ProcId, dict[ProcId, float]] = {}
        self._bw: dict[ProcId, dict[ProcId, float]] = {}
        for src in self._ids:
            self._lat[src] = {}
            self._bw[src] = {}
            for dst in self._ids:
                if src == dst:
                    continue
                try:
                    lat = float(latency[src][dst])
                    bw = float(bandwidth[src][dst])
                except KeyError:
                    raise MachineError(f"missing link {src!r} -> {dst!r}") from None
                if lat < 0 or math.isnan(lat):
                    raise MachineError(f"link {src!r}->{dst!r}: latency must be >= 0")
                if bw <= 0 or math.isnan(bw):
                    raise MachineError(f"link {src!r}->{dst!r}: bandwidth must be > 0")
                self._lat[src][dst] = lat
                self._bw[src][dst] = bw
        n = len(self._ids)
        pairs = max(n * (n - 1), 1)
        self._avg_lat = sum(v for row in self._lat.values() for v in row.values()) / pairs
        inv_bw = sum(1.0 / v for row in self._bw.values() for v in row.values()) / pairs
        self._avg_inv_bw = inv_bw

    def time(self, data: float, src: ProcId, dst: ProcId) -> float:
        data = self.validate_pair(data)
        if src == dst:
            return 0.0
        try:
            return self._lat[src][dst] + data / self._bw[src][dst]
        except KeyError:
            raise MachineError(f"unknown link {src!r} -> {dst!r}") from None

    def average_time(self, data: float) -> float:
        data = self.validate_pair(data)
        return self._avg_lat + data * self._avg_inv_bw

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinkCommunication(procs={len(self._ids)})"
