"""Tests for the parameter-sensitivity analyser."""

import pytest

from repro.bench.sensitivity import OperatingPoint, analyze_sensitivity
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def result():
    # Small, deterministic analysis shared by the assertions below.
    return analyze_sensitivity(
        "HEFT",
        base=OperatingPoint(num_tasks=50, num_procs=4, ccr=1.0, heterogeneity=0.5),
        step=0.5,
        reps=3,
        seed=7,
    )


class TestAnalyzeSensitivity:
    def test_all_parameters_reported(self, result):
        assert set(result.elasticities) == {
            "ccr", "heterogeneity", "num_procs", "num_tasks"
        }

    def test_base_slr_sane(self, result):
        assert result.base_slr >= 1.0

    def test_ccr_elasticity_positive(self, result):
        # More communication always hurts at this operating point.
        assert result.elasticities["ccr"] > 0

    def test_finite_values(self, result):
        import math

        for v in result.elasticities.values():
            assert math.isfinite(v)

    def test_dominant_is_argmax(self, result):
        dom = result.dominant()
        assert abs(result.elasticities[dom]) == max(
            abs(v) for v in result.elasticities.values()
        )

    def test_table_renders(self, result):
        text = result.table()
        assert "elasticity" in text and "HEFT" in text

    def test_deterministic(self):
        a = analyze_sensitivity("HEFT", reps=2, seed=9,
                                base=OperatingPoint(num_tasks=30, num_procs=3))
        b = analyze_sensitivity("HEFT", reps=2, seed=9,
                                base=OperatingPoint(num_tasks=30, num_procs=3))
        assert a.elasticities == b.elasticities

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            analyze_sensitivity(step=0.0)
        with pytest.raises(ConfigurationError):
            analyze_sensitivity(step=1.0)
        with pytest.raises(ConfigurationError):
            analyze_sensitivity(reps=0)
