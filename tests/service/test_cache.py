"""LRU semantics and counters of the content-addressed cache."""

from __future__ import annotations

import pytest

from repro.service.cache import ScheduleCache


def test_miss_then_hit():
    cache = ScheduleCache(capacity=4)
    assert cache.get("k1") is None
    cache.put("k1", {"makespan": 1.0})
    assert cache.get("k1") == {"makespan": 1.0}
    assert (cache.hits, cache.misses) == (1, 1)


def test_hit_returns_the_stored_object():
    """Bit-identity of hits rests on returning the cold run's payload."""
    cache = ScheduleCache(capacity=4)
    payload = {"makespan": 2.0, "placements": [{"task": "a"}]}
    cache.put("k", payload)
    assert cache.get("k") is payload


def test_lru_eviction_order():
    cache = ScheduleCache(capacity=2)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    assert cache.get("a") is not None  # refresh 'a'; 'b' is now LRU
    cache.put("c", {"v": 3})
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert cache.evictions == 1


def test_refresh_on_put():
    cache = ScheduleCache(capacity=2)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    cache.put("a", {"v": 10})  # re-put refreshes recency and value
    cache.put("c", {"v": 3})
    assert "b" not in cache
    assert cache.get("a") == {"v": 10}


def test_zero_capacity_never_stores():
    cache = ScheduleCache(capacity=0)
    cache.put("a", {"v": 1})
    assert len(cache) == 0
    assert cache.get("a") is None


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        ScheduleCache(capacity=-1)


def test_len_and_clear():
    cache = ScheduleCache(capacity=8)
    for i in range(5):
        cache.put(f"k{i}", {"v": i})
    assert len(cache) == 5
    cache.clear()
    assert len(cache) == 0
