"""Metaheuristic decode-throughput benchmark for the compiled core.

Times the GA fitness loop both ways on representative instances — the
object path (genome -> assignment dict -> ``decode_assignment`` ->
``Schedule.makespan``, exactly what the GA inner loop did before the
compiled core) against ``CompiledInstance.decode_batch`` — verifies the
spans are bit-identical, times full GA/SA runs with the compiled core on
vs forced off, and writes ``BENCH_meta.json`` at the repo root.

Run directly to regenerate the JSON:

    PYTHONPATH=src python benchmarks/bench_meta.py

The pytest wrapper re-checks equivalence as a hard gate and the decode
speedup against a soft threshold (CI boxes vary; the committed JSON
records the >= 5x measured on a quiet machine).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.bench import workloads as W
from repro.schedulers.meta.decoder import compiled_decoder, decode_assignment, rank_order

ROOT = Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_meta.json"

#: (num_tasks, num_procs) per workload row; GA-default population size.
SIZES = [(40, 8), (80, 8), (120, 8)]
POP = 24
ROUNDS = 6


@contextmanager
def _compiled_core_disabled():
    """Force the pre-compiled-core GA/SA fitness path (object decodes)
    while leaving the rest of the kernel layer untouched."""
    import repro.schedulers.meta.annealing as A
    import repro.schedulers.meta.genetic as G

    saved = (G.compiled_decoder, A.compiled_decoder)
    G.compiled_decoder = A.compiled_decoder = lambda instance: None
    try:
        yield
    finally:
        G.compiled_decoder, A.compiled_decoder = saved


def _bench_decode(num_tasks: int, num_procs: int) -> dict:
    inst = W.random_instance(np.random.default_rng(17), num_tasks=num_tasks, num_procs=num_procs)
    compiled = compiled_decoder(inst)
    assert compiled is not None
    order = rank_order(inst)
    tasks = list(order)
    procs = inst.machine.proc_ids()
    rng = np.random.default_rng(23)
    population = rng.integers(0, num_procs, size=(POP, num_tasks))

    # Object path: what GeneticScheduler.evaluate() cost per genome
    # before the compiled core, conversion included.
    t0 = time.perf_counter()
    object_spans = []
    for _ in range(ROUNDS):
        object_spans = [
            decode_assignment(
                inst, {t: procs[int(g)] for t, g in zip(tasks, genome)}, order
            ).makespan
            for genome in population
        ]
    object_s = (time.perf_counter() - t0) / (ROUNDS * POP)

    t0 = time.perf_counter()
    for _ in range(ROUNDS):
        batch_spans = compiled.decode_batch(population)
    batch_s = (time.perf_counter() - t0) / (ROUNDS * POP)

    identical = all(a == b for a, b in zip(object_spans, batch_spans.tolist()))
    return {
        "num_tasks": num_tasks,
        "num_procs": num_procs,
        "population": POP,
        "object_us_per_decode": object_s * 1e6,
        "batch_us_per_decode": batch_s * 1e6,
        "speedup": object_s / batch_s if batch_s > 0 else float("inf"),
        "bit_identical": identical,
    }


def _bench_end_to_end() -> dict:
    from repro.schedulers.meta import GeneticScheduler, SimulatedAnnealingScheduler

    inst = W.random_instance(np.random.default_rng(31), num_tasks=60, num_procs=6)
    report = {}
    for name, make in (
        ("ga", lambda: GeneticScheduler(population=20, generations=20, seed=3)),
        ("sa", lambda: SimulatedAnnealingScheduler(iterations=600, seed=3)),
    ):
        with _compiled_core_disabled():
            t0 = time.perf_counter()
            legacy = make().schedule(inst)
            legacy_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        fast = make().schedule(inst)
        fast_s = time.perf_counter() - t0
        report[name] = {
            "object_s": legacy_s,
            "compiled_s": fast_s,
            "speedup": legacy_s / fast_s if fast_s > 0 else float("inf"),
            "identical_makespan": fast.makespan == legacy.makespan,
        }
    return report


def run_meta_bench() -> dict:
    decode = [_bench_decode(n, q) for n, q in SIZES]
    return {
        "decode": decode,
        "decode_speedup_min": min(row["speedup"] for row in decode),
        "end_to_end": _bench_end_to_end(),
    }


def test_meta_decode_gate():
    """Bit-identity is a hard gate; the throughput floor is soft (3x in
    CI vs the >= 5x recorded in BENCH_meta.json on a quiet machine)."""
    report = run_meta_bench()
    assert all(row["bit_identical"] for row in report["decode"]), report["decode"]
    for name, row in report["end_to_end"].items():
        assert row["identical_makespan"], (name, row)
    assert report["decode_speedup_min"] >= 3.0, report["decode"]
    assert report["end_to_end"]["ga"]["speedup"] > 1.5, report["end_to_end"]


def main() -> None:
    report = run_meta_bench()
    OUT.write_text(json.dumps(report, indent=2) + "\n")
    for row in report["decode"]:
        print(
            f"decode {row['num_tasks']:>3}t/{row['num_procs']}p: "
            f"object {row['object_us_per_decode']:8.1f}us  "
            f"batch {row['batch_us_per_decode']:7.1f}us  "
            f"{row['speedup']:5.1f}x  identical={row['bit_identical']}"
        )
    for name, row in report["end_to_end"].items():
        print(
            f"{name.upper()} end-to-end: object {row['object_s']:.3f}s  "
            f"compiled {row['compiled_s']:.3f}s  ({row['speedup']:.2f}x, "
            f"identical={row['identical_makespan']})"
        )
    print(f"wrote {OUT}")


if __name__ == "__main__":
    main()
