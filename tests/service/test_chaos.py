"""Chaos suite: real pool workers dying mid-load.

These tests fork genuine ``ProcessPoolExecutor`` workers and murder one
with an ``os._exit`` fault (the observable signature of an OOM-kill or
a segfaulting native dependency), then assert the acceptance property
of the self-healing engine: **every** request completes, and each
payload is bit-identical to a fault-free computation — worker death is
invisible to callers except in the respawn counters.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.bench import workloads as W
from repro.instance_io import instance_to_json
from repro.service import protocol
from repro.service.engine import EngineConfig, SchedulingEngine
from repro.service.errors import ServiceClosedError
from repro.service.faults import FaultPlan, FaultRule
from repro.utils.rng import as_generator


def _instances(n: int, num_tasks: int = 10):
    return [
        W.random_instance(as_generator(seed), num_tasks=num_tasks, num_procs=3)
        for seed in range(n)
    ]


def _canonical(payload: dict) -> str:
    """The engine-independent part of a payload, as comparable JSON."""
    return json.dumps(
        {k: payload[k] for k in ("alg", "makespan", "num_duplicates", "placements")},
        sort_keys=True,
    )


def test_worker_killed_mid_load_is_invisible_to_callers(tmp_path):
    """Acceptance: 2 workers, one killed mid-batch; all submissions
    (including coalesced duplicates) succeed with payloads bit-identical
    to a fault-free run, and the engine logs exactly one respawn wave."""
    instances = _instances(6)
    expected = {
        i: _canonical(protocol.compute_schedule_payload(instance_to_json(inst), "HEFT"))
        for i, inst in enumerate(instances)
    }
    plan = FaultPlan((
        FaultRule(point="worker.start", action="kill", times=1,
                  token_dir=str(tmp_path)),
    ))

    async def scenario():
        engine = SchedulingEngine(EngineConfig(
            workers=2, fault_plan=plan, max_respawns=3,
            default_timeout=120.0, queue_depth=64,
        ))
        await engine.start()
        try:
            # Two waiters per instance: coalesced siblings must survive
            # the worker death too.
            waiters = [
                engine.submit(inst, "HEFT", timeout=120.0)
                for inst in instances for _ in range(2)
            ]
            results = await asyncio.gather(*waiters)
            for slot, payload in enumerate(results):
                assert _canonical(payload) == expected[slot // 2], (
                    f"instance {slot // 2} diverged from the fault-free run"
                )
            stats = engine.stats()
            assert stats.respawns >= 1, "the kill must have triggered a respawn"
            assert stats.errors == 0, "worker death must not surface as WorkerError"
            assert stats.retries >= 1, "in-flight jobs must have been re-executed"
            assert engine.pool_generation >= 1
            assert not engine.draining
        finally:
            await engine.stop()

    asyncio.run(scenario())


def test_respawn_budget_exhaustion_fails_clean(tmp_path):
    """A crash-looping pool (every worker start is fatal) must exhaust
    its respawn budget and surface a clean ServiceClosedError — never a
    hang, never a raw BrokenProcessPool."""
    plan = FaultPlan((
        FaultRule(point="worker.start", action="kill", times=50,
                  token_dir=str(tmp_path)),
    ))

    async def scenario():
        engine = SchedulingEngine(EngineConfig(
            workers=2, fault_plan=plan, max_respawns=1,
            default_timeout=120.0,
        ))
        await engine.start()
        try:
            with pytest.raises(ServiceClosedError, match="respawn budget exhausted"):
                await asyncio.wait_for(
                    engine.submit(_instances(1)[0], "HEFT"), timeout=60.0
                )
            assert engine.draining
            assert engine.stats().respawns == 1
        finally:
            await engine.stop(drain=False)

    asyncio.run(scenario())


def test_worker_killed_mid_encode_with_persistent_cache(tmp_path):
    """A worker murdered *inside payload encoding* (the ``worker.encode``
    fault site) while the engine persists to disk: every request must
    still succeed bit-identically, and the segment must contain exactly
    the successful computations — no partial or duplicate records from
    the killed attempt — so a restarted engine comes back warm."""
    from repro.service.cache import SegmentStore, request_key
    from repro.service.wire import decode_payload

    instances = _instances(4)
    expected = {
        request_key(inst, "HEFT"): _canonical(
            protocol.compute_schedule_payload(instance_to_json(inst), "HEFT")
        )
        for inst in instances
    }
    token_dir = tmp_path / "tokens"
    cache_dir = tmp_path / "cache"
    token_dir.mkdir()
    plan = FaultPlan((
        FaultRule(point="worker.encode", action="kill", times=1,
                  token_dir=str(token_dir)),
    ))

    async def scenario():
        engine = SchedulingEngine(EngineConfig(
            workers=2, fault_plan=plan, max_respawns=3,
            default_timeout=120.0, queue_depth=64, cache_dir=str(cache_dir),
        ))
        await engine.start()
        try:
            results = await asyncio.gather(*[
                engine.submit(inst, "HEFT", timeout=120.0) for inst in instances
            ])
            for inst, payload in zip(instances, results):
                assert _canonical(payload) == expected[request_key(inst, "HEFT")]
            stats = engine.stats()
            assert stats.respawns >= 1
            assert stats.errors == 0
        finally:
            await engine.stop()

    asyncio.run(scenario())

    store = SegmentStore(str(cache_dir))
    entries, report = store.recover()
    store.close()
    assert report == {"recovered": 4, "skipped": 0, "truncated": 0, "rotated": 0}
    assert set(entries) == set(expected)
    for key, raw in entries.items():
        assert _canonical(decode_payload(raw)) == expected[key], (
            "persisted record diverged from the fault-free computation"
        )


def test_engine_keeps_serving_after_heal(tmp_path):
    """Post-heal the engine is a fully ordinary engine: fresh submissions
    compute on the respawned pool and caching still works."""
    plan = FaultPlan((
        FaultRule(point="worker.start", action="kill", times=1,
                  token_dir=str(tmp_path)),
    ))
    inst_a, inst_b = _instances(2)

    async def scenario():
        engine = SchedulingEngine(EngineConfig(
            workers=2, fault_plan=plan, max_respawns=3, default_timeout=120.0,
        ))
        await engine.start()
        try:
            first = await engine.submit(inst_a, "HEFT", timeout=120.0)
            assert engine.stats().respawns == 1
            later = await engine.submit(inst_b, "HEFT", timeout=120.0)
            assert later["placements"]
            again = await engine.submit(inst_a, "HEFT", timeout=120.0)
            assert again["cache_hit"] is True
            assert _canonical(again) == _canonical(first)
        finally:
            await engine.stop()

    asyncio.run(scenario())
